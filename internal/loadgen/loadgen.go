// Package loadgen is an open-loop load harness: it offers requests to
// a target at a fixed arrival rate — timer-driven, never waiting for
// responses — and classifies every outcome against a latency SLO. The
// open loop is the point: a closed loop (N workers, next request after
// the previous answers) self-throttles exactly when the system slows
// down, hiding the overload the harness exists to measure (the
// coordinated-omission trap). Here arrivals keep coming at the offered
// rate no matter how the target behaves, so queueing delay, shedding
// and brownout all show up in the numbers.
//
// The headline metric is throughput-at-SLO: sweep offered QPS and
// report, per step, the goodput (on-SLO successes per second) plus the
// latency quantiles, shed fraction and degraded fraction. See
// cmd/loadtest for the CLI and scripts/overload_smoke.sh for the CI
// assertion run.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/search"
)

// Target is the surface the generator drives. fleet.Client and any
// in-process service wrapped with ctx-less mutations adapt to it; see
// cmd/loadtest.
type Target interface {
	search.Searcher
	Befriend(ctx context.Context, a, b string, weight float64) error
	Tag(ctx context.Context, user, item, tag string) error
}

// Mix weights the request classes. Zero values are allowed; an
// all-zero mix defaults to reads only.
type Mix struct {
	Read  int `json:"read"`
	Write int `json:"write"`
	Batch int `json:"batch"`
}

// DefaultMix is read-heavy with a write trickle, the serving posture
// the paper's workloads assume.
func DefaultMix() Mix { return Mix{Read: 90, Write: 5, Batch: 5} }

// Config tunes one fixed-rate run.
type Config struct {
	// QPS is the offered arrival rate (> 0).
	QPS float64
	// Duration is how long arrivals are offered.
	Duration time.Duration
	// SLO is the latency bound a success must meet to count as goodput.
	SLO time.Duration
	// Timeout is the per-request context deadline (0 = 2×SLO).
	Timeout time.Duration
	// Mix weights request classes (zero value = reads only).
	Mix Mix
	// BatchSize is the number of queries per batch request (0 = 8).
	BatchSize int
	// Seekers and Tags are the corpus names queries draw from.
	Seekers []string
	Tags    []string
	// K is the top-k asked per query (0 = 10).
	K int
	// MaxOutstanding caps in-flight requests so a stuck target cannot
	// accumulate unbounded goroutines (0 = 4096). Arrivals past the cap
	// are counted Dropped — they represent work the harness could not
	// even offer, and are reported, never silently discarded.
	MaxOutstanding int
	// Seed seeds the workload RNG (0 = 1).
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.QPS <= 0 {
		return c, fmt.Errorf("loadgen: QPS %v must be > 0", c.QPS)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: duration %v must be > 0", c.Duration)
	}
	if len(c.Seekers) == 0 {
		return c, fmt.Errorf("loadgen: empty seeker corpus")
	}
	if c.SLO <= 0 {
		c.SLO = 100 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * c.SLO
	}
	if c.Mix.Read <= 0 && c.Mix.Write <= 0 && c.Mix.Batch <= 0 {
		c.Mix = Mix{Read: 1}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// Report is one run's outcome. Latency quantiles cover admitted
// requests (anything that got an answer, on time or late); sheds and
// transport failures are counted, not timed.
type Report struct {
	QPS      float64       `json:"qps"`
	Duration time.Duration `json:"duration_ns"`
	SLO      time.Duration `json:"slo_ns"`

	Offered int64 `json:"offered"`
	Sent    int64 `json:"sent"`
	Dropped int64 `json:"dropped"` // arrivals past MaxOutstanding

	OK          int64 `json:"ok"`       // success within SLO
	Late        int64 `json:"late"`     // success past SLO
	Degraded    int64 `json:"degraded"` // successes carrying Degraded (subset of OK+Late)
	Shed        int64 `json:"shed"`     // ErrOverloaded
	Unavailable int64 `json:"unavailable"`
	Invalid     int64 `json:"invalid"`
	Timeout     int64 `json:"timeout"` // ctx deadline/cancel
	OtherErrors int64 `json:"other_errors"`

	Goodput     float64 `json:"goodput_qps"` // OK per second
	ShedPct     float64 `json:"shed_pct"`
	DegradedPct float64 `json:"degraded_pct"`

	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
}

// counters aggregates outcomes lock-free across arrival goroutines.
type counters struct {
	sent, dropped                              atomic.Int64
	ok, late, degraded                         atomic.Int64
	shed, unavailable, invalid, timeout, other atomic.Int64
}

// Run offers cfg.QPS arrivals per second against target for
// cfg.Duration and reports the outcome. ctx cancellation stops the run
// early (outcomes so far are still reported).
func Run(ctx context.Context, target Target, cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	var (
		cnt         counters
		outstanding atomic.Int64
		wg          sync.WaitGroup
		hist        = metrics.NewHistogram(0) // cumulative over the run
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	end := start.Add(cfg.Duration)
	var offered int64

	for next := start; next.Before(end); next = next.Add(interval) {
		// Open loop: sleep until the arrival is due, then fire it
		// regardless of how many are still in flight. When the clock is
		// already past `next` (scheduling lag), fire immediately —
		// arrivals are due by wall time, not by the loop's progress.
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return buildReport(cfg, time.Since(start), offered, &cnt, hist), ctx.Err()
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return buildReport(cfg, time.Since(start), offered, &cnt, hist), ctx.Err()
		}
		offered++
		if outstanding.Load() >= int64(cfg.MaxOutstanding) {
			cnt.dropped.Add(1)
			continue
		}
		kind := pickKind(rng, cfg.Mix)
		seed := rng.Int63() // per-request randomness, drawn on the loop goroutine
		outstanding.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer outstanding.Add(-1)
			fire(ctx, target, cfg, kind, seed, &cnt, hist)
		}()
	}
	wg.Wait()
	return buildReport(cfg, time.Since(start), offered, &cnt, hist), nil
}

type reqKind int

const (
	kindRead reqKind = iota
	kindWrite
	kindBatch
)

func pickKind(rng *rand.Rand, m Mix) reqKind {
	total := m.Read + m.Write + m.Batch
	n := rng.Intn(total)
	switch {
	case n < m.Read:
		return kindRead
	case n < m.Read+m.Write:
		return kindWrite
	default:
		return kindBatch
	}
}

// fire issues one request and classifies its outcome.
func fire(ctx context.Context, target Target, cfg Config, kind reqKind, seed int64, cnt *counters, hist *metrics.Histogram) {
	rng := rand.New(rand.NewSource(seed))
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	cnt.sent.Add(1)
	start := time.Now()
	var err error
	degraded := false
	switch kind {
	case kindWrite:
		// Writes re-declare edges inside the existing corpus, so the
		// graph topology (and thus query cost) stays stable over a run.
		a := cfg.Seekers[rng.Intn(len(cfg.Seekers))]
		b := cfg.Seekers[rng.Intn(len(cfg.Seekers))]
		if a == b {
			b = cfg.Seekers[(rng.Intn(len(cfg.Seekers))+1)%len(cfg.Seekers)]
		}
		err = target.Befriend(rctx, a, b, 0.5)
	case kindBatch:
		reqs := make([]search.Request, cfg.BatchSize)
		for i := range reqs {
			reqs[i] = randQuery(rng, cfg)
		}
		for _, r := range target.DoBatch(rctx, reqs) {
			if r.Err != nil && err == nil {
				err = r.Err
			}
			degraded = degraded || r.Response.Degraded
		}
	default:
		var resp search.Response
		resp, err = target.Do(rctx, randQuery(rng, cfg))
		degraded = resp.Degraded
	}
	lat := time.Since(start)

	switch {
	case err == nil:
		hist.Observe(lat)
		if lat <= cfg.SLO {
			cnt.ok.Add(1)
		} else {
			cnt.late.Add(1)
		}
		if degraded {
			cnt.degraded.Add(1)
		}
	case errors.Is(err, search.ErrOverloaded):
		cnt.shed.Add(1)
	case errors.Is(err, search.ErrUnavailable):
		cnt.unavailable.Add(1)
	case errors.Is(err, search.ErrInvalid):
		cnt.invalid.Add(1)
	case rctx.Err() != nil:
		hist.Observe(lat) // a timeout consumed a full budget of latency
		cnt.timeout.Add(1)
	default:
		cnt.other.Add(1)
	}
}

func randQuery(rng *rand.Rand, cfg Config) search.Request {
	req := search.Request{
		Seeker: cfg.Seekers[rng.Intn(len(cfg.Seekers))],
		K:      cfg.K,
	}
	if len(cfg.Tags) > 0 {
		req.Tags = []string{cfg.Tags[rng.Intn(len(cfg.Tags))]}
	}
	return req
}

func buildReport(cfg Config, elapsed time.Duration, offered int64, cnt *counters, hist *metrics.Histogram) Report {
	snap := hist.Snapshot()
	r := Report{
		QPS:      cfg.QPS,
		Duration: elapsed,
		SLO:      cfg.SLO,
		Offered:  offered,
		Sent:     cnt.sent.Load(),
		Dropped:  cnt.dropped.Load(),

		OK:          cnt.ok.Load(),
		Late:        cnt.late.Load(),
		Degraded:    cnt.degraded.Load(),
		Shed:        cnt.shed.Load(),
		Unavailable: cnt.unavailable.Load(),
		Invalid:     cnt.invalid.Load(),
		Timeout:     cnt.timeout.Load(),
		OtherErrors: cnt.other.Load(),

		P50: snap.P50, P99: snap.P99, P999: snap.P999, Max: snap.Max,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		r.Goodput = float64(r.OK) / secs
	}
	if r.Sent > 0 {
		r.ShedPct = 100 * float64(r.Shed) / float64(r.Sent)
	}
	if done := r.OK + r.Late; done > 0 {
		r.DegradedPct = 100 * float64(r.Degraded) / float64(done)
	}
	return r
}

// Sweep runs one fixed-rate step per QPS value and returns the
// throughput-at-SLO curve. A ctx cancellation mid-sweep returns the
// steps completed so far with the error.
func Sweep(ctx context.Context, target Target, base Config, qps []float64) ([]Report, error) {
	out := make([]Report, 0, len(qps))
	for _, q := range qps {
		cfg := base
		cfg.QPS = q
		rep, err := Run(ctx, target, cfg)
		out = append(out, rep)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// FindCapacity ramps the offered rate multiplicatively (×2 from
// startQPS) until a step stops being healthy — goodput below 90% of
// offered, or p99 above the SLO — and returns the last healthy step's
// rate (and its report). It is the calibration half of an overload
// test: drive 2× the returned capacity and the target must shed.
func FindCapacity(ctx context.Context, target Target, base Config, startQPS float64) (float64, Report, error) {
	if startQPS <= 0 {
		startQPS = 50
	}
	var (
		lastGood    float64
		lastGoodRep Report
	)
	for q := startQPS; ; q *= 2 {
		cfg := base
		cfg.QPS = q
		rep, err := Run(ctx, target, cfg)
		if err != nil {
			return lastGood, lastGoodRep, err
		}
		healthy := rep.P99 <= cfg.SLO && float64(rep.OK) >= 0.9*float64(rep.Offered)
		if !healthy {
			if lastGood == 0 {
				// Even the first step failed: report it as the capacity
				// estimate so callers can still scale from something.
				return q, rep, nil
			}
			return lastGood, lastGoodRep, nil
		}
		lastGood, lastGoodRep = q, rep
		if q >= 1e6 {
			return lastGood, lastGoodRep, nil
		}
	}
}
