// Package recommend builds item recommendation on top of the social
// search substrate: instead of answering an explicit tag query, it
// surfaces items the seeker has not interacted with but their social
// neighbourhood has — the "discovery" application the paper's
// introduction motivates.
//
// The recommendation score of item i for seeker s is the proximity-
// weighted mass of all tagging actions on i inside s's horizon,
// excluding s's own:
//
//	rec(s, i) = Σ_{v≠s} Σ_t σ(s,v) · tf(v,i,t)
//
// Recommendations come with explanations: the top contributing
// (friend, tag) pairs.
package recommend

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

// Recommendation is one suggested item with its provenance.
type Recommendation struct {
	Item  tagstore.ItemID
	Score float64
	// Reasons are the strongest contributors, sorted by contribution,
	// truncated to the builder's MaxReasons.
	Reasons []Reason
}

// Reason names one contribution to a recommendation.
type Reason struct {
	User         graph.UserID
	Tag          tagstore.TagID
	Contribution float64
}

// Params tunes recommendation generation.
type Params struct {
	// K is the number of recommendations (≥ 1).
	K int
	// MaxReasons bounds the explanation list per item; 0 means 3.
	MaxReasons int
	// IncludeSeen keeps items the seeker already tagged (off by
	// default: recommendations are for discovery).
	IncludeSeen bool
}

// Recommender generates recommendations from an engine's graph and
// store.
type Recommender struct {
	engine *core.Engine
}

// New builds a Recommender over the engine.
func New(e *core.Engine) *Recommender { return &Recommender{engine: e} }

// Recommend computes the top-K recommendations for the seeker by
// expanding the social neighbourhood once and aggregating every tagging
// action inside it.
func (r *Recommender) Recommend(seeker graph.UserID, p Params) ([]Recommendation, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("recommend: K %d must be >= 1", p.K)
	}
	maxReasons := p.MaxReasons
	if maxReasons <= 0 {
		maxReasons = 3
	}
	g := r.engine.Graph()
	store := r.engine.Store()
	if seeker < 0 || int(seeker) >= g.NumUsers() {
		return nil, fmt.Errorf("recommend: seeker %d outside [0,%d)", seeker, g.NumUsers())
	}

	it, err := proximity.NewIterator(g, seeker, r.engine.ProximityParams())
	if err != nil {
		return nil, err
	}

	seen := make(map[tagstore.ItemID]bool)
	if !p.IncludeSeen {
		for _, t := range store.UserTags(int32(seeker)) {
			for _, up := range store.UserList(int32(seeker), t) {
				seen[up.Item] = true
			}
		}
	}

	type acc struct {
		score   float64
		reasons []Reason
	}
	scores := make(map[tagstore.ItemID]*acc)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.User == seeker {
			continue
		}
		for _, t := range store.UserTags(int32(e.User)) {
			for _, up := range store.UserList(int32(e.User), t) {
				if seen[up.Item] {
					continue
				}
				contribution := e.Prox * float64(up.TF)
				a := scores[up.Item]
				if a == nil {
					a = &acc{}
					scores[up.Item] = a
				}
				a.score += contribution
				a.reasons = append(a.reasons, Reason{User: e.User, Tag: t, Contribution: contribution})
			}
		}
	}

	items := make([]tagstore.ItemID, 0, len(scores))
	for i := range scores {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool {
		sa, sb := scores[items[a]].score, scores[items[b]].score
		if sa != sb {
			return sa > sb
		}
		return items[a] < items[b]
	})
	if len(items) > p.K {
		items = items[:p.K]
	}

	out := make([]Recommendation, 0, len(items))
	for _, i := range items {
		a := scores[i]
		sort.Slice(a.reasons, func(x, y int) bool {
			rx, ry := a.reasons[x], a.reasons[y]
			if rx.Contribution != ry.Contribution {
				return rx.Contribution > ry.Contribution
			}
			if rx.User != ry.User {
				return rx.User < ry.User
			}
			return rx.Tag < ry.Tag
		})
		reasons := a.reasons
		if len(reasons) > maxReasons {
			reasons = reasons[:maxReasons]
		}
		out = append(out, Recommendation{Item: i, Score: a.score, Reasons: reasons})
	}
	return out, nil
}

// SimilarUsers returns the seeker's top-K most similar users by a blend
// of social proximity and tagging overlap (Jaccard over item sets),
// skipping the seeker. It powers "people to follow" features.
func (r *Recommender) SimilarUsers(seeker graph.UserID, k int) ([]UserScore, error) {
	if k < 1 {
		return nil, fmt.Errorf("recommend: k %d must be >= 1", k)
	}
	g := r.engine.Graph()
	store := r.engine.Store()
	if seeker < 0 || int(seeker) >= g.NumUsers() {
		return nil, fmt.Errorf("recommend: seeker %d outside [0,%d)", seeker, g.NumUsers())
	}
	mine := itemSet(store, seeker)
	it, err := proximity.NewIterator(g, seeker, r.engine.ProximityParams())
	if err != nil {
		return nil, err
	}
	var out []UserScore
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.User == seeker {
			continue
		}
		theirs := itemSet(store, e.User)
		out = append(out, UserScore{
			User:  e.User,
			Score: e.Prox * (1 + jaccard(mine, theirs)),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].User < out[b].User
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// UserScore is a scored user.
type UserScore struct {
	User  graph.UserID
	Score float64
}

func itemSet(store *tagstore.Store, u graph.UserID) map[tagstore.ItemID]bool {
	set := make(map[tagstore.ItemID]bool)
	for _, t := range store.UserTags(int32(u)) {
		for _, up := range store.UserList(int32(u), t) {
			set[up.Item] = true
		}
	}
	return set
}

func jaccard(a, b map[tagstore.ItemID]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for i := range a {
		if b[i] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
