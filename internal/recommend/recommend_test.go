package recommend

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

// world: alice(0)–bob(1) w=0.5, bob–carol(2) w=0.5, dora(3) isolated.
// alice tagged item 0; bob items 0,1; carol item 2; dora item 3.
func world(t testing.TB) *core.Engine {
	t.Helper()
	gb := graph.NewBuilder(4)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(4, 4, 2)
	tb.Add(0, 0, 0)
	tb.Add(1, 0, 0)
	tb.AddCount(1, 1, 0, 3)
	tb.Add(2, 2, 1)
	tb.Add(3, 3, 0)
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecommendBasics(t *testing.T) {
	r := New(world(t))
	recs, err := r.Recommend(0, Params{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// alice already has item 0 → excluded. Expect item 1 (bob, 0.5·3 =
	// 1.5) then item 2 (carol, 0.25·1).
	if len(recs) != 2 {
		t.Fatalf("got %d recommendations: %+v", len(recs), recs)
	}
	if recs[0].Item != 1 || math.Abs(recs[0].Score-1.5) > 1e-12 {
		t.Fatalf("top rec = %+v, want item 1 score 1.5", recs[0])
	}
	if recs[1].Item != 2 || math.Abs(recs[1].Score-0.25) > 1e-12 {
		t.Fatalf("second rec = %+v, want item 2 score 0.25", recs[1])
	}
	// explanation: item 1 recommended because bob tagged it
	if len(recs[0].Reasons) == 0 || recs[0].Reasons[0].User != 1 {
		t.Fatalf("missing/wrong reason: %+v", recs[0].Reasons)
	}
}

func TestRecommendIncludeSeen(t *testing.T) {
	r := New(world(t))
	recs, err := r.Recommend(0, Params{K: 5, IncludeSeen: true})
	if err != nil {
		t.Fatal(err)
	}
	// item 0 now included: bob's copy contributes 0.5.
	found := false
	for _, rec := range recs {
		if rec.Item == 0 {
			found = true
			if math.Abs(rec.Score-0.5) > 1e-12 {
				t.Fatalf("seen item score = %g, want 0.5", rec.Score)
			}
		}
	}
	if !found {
		t.Fatalf("IncludeSeen did not include item 0: %+v", recs)
	}
}

func TestRecommendIsolatedSeeker(t *testing.T) {
	r := New(world(t))
	recs, err := r.Recommend(3, Params{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("isolated seeker got recommendations: %+v", recs)
	}
}

func TestRecommendValidation(t *testing.T) {
	r := New(world(t))
	if _, err := r.Recommend(0, Params{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := r.Recommend(-1, Params{K: 1}); err == nil {
		t.Fatal("negative seeker accepted")
	}
	if _, err := r.Recommend(9, Params{K: 1}); err == nil {
		t.Fatal("out-of-range seeker accepted")
	}
}

func TestRecommendMaxReasons(t *testing.T) {
	// many contributors to one item
	gb := graph.NewBuilder(6)
	for i := 1; i < 6; i++ {
		gb.AddEdge(0, graph.UserID(i), 0.5)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(6, 1, 1)
	for i := 1; i < 6; i++ {
		tb.Add(int32(i), 0, 0)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := New(e).Recommend(0, Params{K: 1, MaxReasons: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Reasons) != 2 {
		t.Fatalf("reasons not truncated: %+v", recs)
	}
}

func TestSimilarUsers(t *testing.T) {
	r := New(world(t))
	us, err := r.SimilarUsers(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// bob shares item 0 with alice and is closest: must rank first.
	if len(us) != 2 {
		t.Fatalf("got %d similar users: %+v", len(us), us)
	}
	if us[0].User != 1 {
		t.Fatalf("top similar user = %d, want bob(1)", us[0].User)
	}
	if us[0].Score <= us[1].Score {
		t.Fatalf("scores not ordered: %+v", us)
	}
}

func TestSimilarUsersValidation(t *testing.T) {
	r := New(world(t))
	if _, err := r.SimilarUsers(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := r.SimilarUsers(99, 1); err == nil {
		t.Fatal("out-of-range seeker accepted")
	}
}

func TestRecommendOnGeneratedCorpus(t *testing.T) {
	ds, err := gen.Generate(gen.DeliciousParams().Scale(0.05), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      1,
	}
	e, err := core.NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := New(e)
	seeker := ds.Graph.DegreePercentileUser(90)
	recs, err := r.Recommend(seeker, Params{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("hub seeker got no recommendations")
	}
	// scores sorted descending, no seeker-seen items
	seen := map[tagstore.ItemID]bool{}
	for _, tg := range ds.Store.UserTags(seeker) {
		for _, up := range ds.Store.UserList(seeker, tg) {
			seen[up.Item] = true
		}
	}
	prev := math.Inf(1)
	for _, rec := range recs {
		if rec.Score > prev {
			t.Fatal("recommendations not sorted by score")
		}
		prev = rec.Score
		if seen[rec.Item] {
			t.Fatalf("recommended already-seen item %d", rec.Item)
		}
		if len(rec.Reasons) == 0 {
			t.Fatalf("recommendation without explanation: %+v", rec)
		}
	}
}
