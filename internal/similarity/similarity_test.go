package similarity

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

// fixture: u0 and u1 share item 0; u2 disjoint; u3 empty.
func fixture(t testing.TB) (*graph.Graph, *tagstore.Store) {
	t.Helper()
	gb := graph.NewBuilder(4)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	gb.AddEdge(0, 3, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(4, 3, 1)
	tb.Add(0, 0, 0)
	tb.Add(0, 1, 0)
	tb.Add(1, 0, 0)
	tb.Add(2, 2, 0)
	s, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestMeasureString(t *testing.T) {
	if Jaccard.String() != "jaccard" || Cosine.String() != "cosine" {
		t.Fatal("measure names wrong")
	}
	if Measure(9).String() == "" {
		t.Fatal("unknown measure should stringify")
	}
}

func TestUsersJaccard(t *testing.T) {
	_, s := fixture(t)
	// u0 items {0,1}; u1 items {0} → 1/2
	sim, err := Users(s, 0, 1, Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-0.5) > 1e-12 {
		t.Fatalf("jaccard = %g, want 0.5", sim)
	}
	// disjoint → 0
	sim, err = Users(s, 0, 2, Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0 {
		t.Fatalf("disjoint jaccard = %g", sim)
	}
	// empty vs empty → 0
	if sim, _ := Users(s, 3, 3, Jaccard); sim != 0 {
		t.Fatalf("empty jaccard = %g", sim)
	}
}

func TestUsersCosine(t *testing.T) {
	_, s := fixture(t)
	// u0 vector (1,1,0); u1 vector (1,0,0): cos = 1/√2
	sim, err := Users(s, 0, 1, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("cosine = %g, want %g", sim, 1/math.Sqrt2)
	}
	// identical profiles → 1
	sim, err = Users(s, 0, 0, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-1) > 1e-12 {
		t.Fatalf("self cosine = %g", sim)
	}
	// empty profile → 0
	if sim, _ := Users(s, 0, 3, Cosine); sim != 0 {
		t.Fatalf("empty cosine = %g", sim)
	}
}

func TestUsersValidation(t *testing.T) {
	_, s := fixture(t)
	if _, err := Users(s, -1, 0, Jaccard); err == nil {
		t.Fatal("negative user accepted")
	}
	if _, err := Users(s, 0, 9, Jaccard); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := Users(s, 0, 1, Measure(7)); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

func TestReweight(t *testing.T) {
	g, s := fixture(t)
	g2, err := Reweight(g, s, ReweightParams{Measure: Jaccard, Floor: 0.05, Blend: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("edge set changed")
	}
	// (0,1): jaccard 0.5
	if w, _ := g2.EdgeWeight(0, 1); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("w(0,1) = %g, want 0.5", w)
	}
	// (1,2): disjoint → floor
	if w, _ := g2.EdgeWeight(1, 2); w != 0.05 {
		t.Fatalf("w(1,2) = %g, want floor 0.05", w)
	}
}

func TestReweightBlend(t *testing.T) {
	g, s := fixture(t)
	g2, err := Reweight(g, s, ReweightParams{Measure: Jaccard, Floor: 0.01, Blend: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// (0,1): 0.5·0.5 + 0.5·0.5 = 0.5
	if w, _ := g2.EdgeWeight(0, 1); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("blended w(0,1) = %g", w)
	}
	// blend 0 keeps the original
	g3, err := Reweight(g, s, ReweightParams{Measure: Jaccard, Floor: 0.01, Blend: 0})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g3.EdgeWeight(1, 2); w != 0.5 {
		t.Fatalf("blend 0 w(1,2) = %g, want original 0.5", w)
	}
}

func TestReweightValidation(t *testing.T) {
	g, s := fixture(t)
	if _, err := Reweight(g, s, ReweightParams{Measure: Jaccard, Floor: 0, Blend: 1}); err == nil {
		t.Fatal("zero floor accepted")
	}
	if _, err := Reweight(g, s, ReweightParams{Measure: Jaccard, Floor: 0.1, Blend: 2}); err == nil {
		t.Fatal("blend 2 accepted")
	}
	if _, err := Reweight(g, s, ReweightParams{Measure: Measure(7), Floor: 0.1, Blend: 1}); err == nil {
		t.Fatal("unknown measure accepted")
	}
	s2, _ := tagstore.NewBuilder(9, 1, 1).Build()
	if _, err := Reweight(g, s2, DefaultReweightParams()); err == nil {
		t.Fatal("mismatched universes accepted")
	}
}

func TestAdamicAdar(t *testing.T) {
	// path 0-1-2: (0,2) is the only 2-hop non-edge, via z=1 (deg 2).
	gb := graph.NewBuilder(3)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	preds, err := AdamicAdar(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predictions: %v", len(preds), preds)
	}
	p := preds[0]
	if p.U != 0 || p.V != 2 {
		t.Fatalf("prediction = %+v, want (0,2)", p)
	}
	if math.Abs(p.Score-1/math.Log(2)) > 1e-12 {
		t.Fatalf("score = %g, want 1/ln2", p.Score)
	}
}

func TestAdamicAdarRanksSharedHubs(t *testing.T) {
	// u0 and u1 share two common neighbours (2, 3); u0 and u4 share one.
	gb := graph.NewBuilder(5)
	gb.AddEdge(0, 2, 0.5)
	gb.AddEdge(1, 2, 0.5)
	gb.AddEdge(0, 3, 0.5)
	gb.AddEdge(1, 3, 0.5)
	gb.AddEdge(4, 2, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	preds, err := AdamicAdar(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) < 3 {
		t.Fatalf("got %d predictions", len(preds))
	}
	// (2,3) share {0,1} (both deg 2): 2/ln2 ≈ 2.885 — strongest.
	// (0,1) share {2,3} (deg 3 and 2): 1/ln3 + 1/ln2 ≈ 2.352.
	// two-common-neighbour pairs must outrank single-neighbour ones.
	if preds[0].U != 2 || preds[0].V != 3 {
		t.Fatalf("top prediction = %+v, want (2,3)", preds[0])
	}
	if preds[1].U != 0 || preds[1].V != 1 {
		t.Fatalf("second prediction = %+v, want (0,1)", preds[1])
	}
	if preds[1].Score <= preds[2].Score {
		t.Fatalf("two-neighbour pair does not outrank single: %v", preds)
	}
}

func TestAdamicAdarValidation(t *testing.T) {
	g, _ := fixture(t)
	if _, err := AdamicAdar(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestReweightOnGeneratedCorpus(t *testing.T) {
	ds, err := gen.Generate(gen.DeliciousParams().Scale(0.05), 21)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Reweight(ds.Graph, ds.Store, DefaultReweightParams())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("edge count changed")
	}
	for _, e := range g2.Edges() {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("weight %g out of range", e.Weight)
		}
	}
	// homophilous corpora should produce some edges above the floor
	above := 0
	for _, e := range g2.Edges() {
		if e.Weight > 0.05 {
			above++
		}
	}
	if above == 0 {
		t.Fatal("no edge carries behavioural similarity")
	}
}
