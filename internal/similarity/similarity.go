// Package similarity derives social edge weights from observed tagging
// behaviour and predicts new links. Real deployments rarely have
// explicit friendship strengths; they estimate them from interaction
// overlap, which is what this package does over a tagstore:
//
//   - Jaccard and cosine similarity between users' item profiles,
//     used to (re-)weight an existing friendship graph;
//   - Adamic-Adar link prediction over the graph structure, used to
//     propose new friendships (the "people you may know" feed).
package similarity

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/tagstore"
)

// Measure selects the profile-similarity function.
type Measure int

const (
	// Jaccard is |A∩B| / |A∪B| over distinct item sets.
	Jaccard Measure = iota
	// Cosine is the cosine of the users' item-frequency vectors.
	Cosine
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Jaccard:
		return "jaccard"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// profile is a user's item → total-count vector.
func profile(s *tagstore.Store, u graph.UserID) map[tagstore.ItemID]float64 {
	p := make(map[tagstore.ItemID]float64)
	for _, t := range s.UserTags(int32(u)) {
		for _, up := range s.UserList(int32(u), t) {
			p[up.Item] += float64(up.TF)
		}
	}
	return p
}

// Users computes the similarity of two users' item profiles in [0, 1].
func Users(s *tagstore.Store, a, b graph.UserID, m Measure) (float64, error) {
	if a < 0 || int(a) >= s.NumUsers() || b < 0 || int(b) >= s.NumUsers() {
		return 0, fmt.Errorf("similarity: user pair (%d,%d) outside [0,%d)", a, b, s.NumUsers())
	}
	pa, pb := profile(s, a), profile(s, b)
	switch m {
	case Jaccard:
		return jaccard(pa, pb), nil
	case Cosine:
		return cosine(pa, pb), nil
	default:
		return 0, fmt.Errorf("similarity: unknown measure %d", int(m))
	}
}

func jaccard(a, b map[tagstore.ItemID]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for i := range a {
		if _, ok := b[i]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func cosine(a, b map[tagstore.ItemID]float64) float64 {
	var dot, na, nb float64
	for i, x := range a {
		na += x * x
		if y, ok := b[i]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// ReweightParams tunes Reweight.
type ReweightParams struct {
	// Measure is the profile similarity used.
	Measure Measure
	// Floor keeps every edge queryable: final weight =
	// max(Floor, similarity). Must lie in (0, 1]; edges with zero
	// similarity would otherwise be invalid (weights must be positive).
	Floor float64
	// Blend mixes the original weight with the similarity:
	// w' = Blend·sim + (1−Blend)·w. 1 replaces, 0 keeps.
	Blend float64
}

// DefaultReweightParams keeps structure but grounds strengths in
// behaviour.
func DefaultReweightParams() ReweightParams {
	return ReweightParams{Measure: Cosine, Floor: 0.05, Blend: 1.0}
}

// Reweight rebuilds the graph with edge weights derived from tagging
// similarity. The edge set is unchanged; only strengths move.
func Reweight(g *graph.Graph, s *tagstore.Store, p ReweightParams) (*graph.Graph, error) {
	if g.NumUsers() != s.NumUsers() {
		return nil, fmt.Errorf("similarity: graph has %d users, store has %d", g.NumUsers(), s.NumUsers())
	}
	if p.Floor <= 0 || p.Floor > 1 {
		return nil, fmt.Errorf("similarity: floor %g outside (0,1]", p.Floor)
	}
	if p.Blend < 0 || p.Blend > 1 {
		return nil, fmt.Errorf("similarity: blend %g outside [0,1]", p.Blend)
	}
	// Cache profiles: each user's profile is needed deg(u) times.
	profiles := make([]map[tagstore.ItemID]float64, g.NumUsers())
	prof := func(u graph.UserID) map[tagstore.ItemID]float64 {
		if profiles[u] == nil {
			profiles[u] = profile(s, u)
		}
		return profiles[u]
	}
	b := graph.NewBuilder(g.NumUsers())
	for _, e := range g.Edges() {
		var sim float64
		switch p.Measure {
		case Jaccard:
			sim = jaccard(prof(e.U), prof(e.V))
		case Cosine:
			sim = cosine(prof(e.U), prof(e.V))
		default:
			return nil, fmt.Errorf("similarity: unknown measure %d", int(p.Measure))
		}
		w := p.Blend*sim + (1-p.Blend)*e.Weight
		if w < p.Floor {
			w = p.Floor
		}
		if w > 1 {
			w = 1
		}
		b.AddEdge(e.U, e.V, w)
	}
	return b.Build()
}

// Prediction is one proposed friendship.
type Prediction struct {
	U, V  graph.UserID
	Score float64
}

// AdamicAdar proposes the top-k non-edges ranked by the Adamic-Adar
// index: Σ over common neighbours z of 1/log(deg(z)). Only pairs within
// two hops are considered (others score 0 by definition).
func AdamicAdar(g *graph.Graph, k int) ([]Prediction, error) {
	if k < 1 {
		return nil, fmt.Errorf("similarity: k %d must be >= 1", k)
	}
	type pair struct{ u, v graph.UserID }
	scores := make(map[pair]float64)
	n := g.NumUsers()
	for z := 0; z < n; z++ {
		nbrs, _ := g.Neighbors(graph.UserID(z))
		d := len(nbrs)
		if d < 2 {
			continue
		}
		w := 1 / math.Log(float64(d)) // d ≥ 2 here, so log is positive
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				u, v := nbrs[i], nbrs[j]
				if g.HasEdge(u, v) {
					continue
				}
				scores[pair{u, v}] += w
			}
		}
	}
	out := make([]Prediction, 0, len(scores))
	for p, s := range scores {
		out = append(out, Prediction{U: p.u, V: p.v, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
