package qcache

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestEdgeInvalidationNeverServesStale is the -race stress test for the
// Put-refusal bracket and lazy reaping under edge-scoped invalidation:
// concurrent "compactions" (version bump + InvalidateEdges, under the
// same lock a service would hold) interleave with concurrent lookups
// and materializations, and the test asserts that a cache hit NEVER
// returns a horizon materialized from a superseded graph version.
//
// Graph model: component A = users {0..3} (line), component B =
// {4..7}. The mutated edge is (0, 1), so every component-A horizon is
// affected by every mutation while component-B horizons never are. The
// "graph version" of component A is tracked in the harness; horizons
// are pre-materialized per (seeker, version) so a served horizon's
// version is recoverable by pointer identity.
func TestEdgeInvalidationNeverServesStale(t *testing.T) {
	const (
		versions = 64
		readers  = 8
		lookups  = 400
	)
	e := componentsEngine(t, 2, 4)
	c, err := New(16)
	if err != nil {
		t.Fatal(err)
	}

	seekersA := []graph.UserID{0, 1, 2, 3}
	seekersB := []graph.UserID{4, 5, 6, 7}

	// Pre-materialize distinct horizon objects per (seeker, version) and
	// index them by identity. Read-only during the stress phase.
	versionOf := make(map[*core.SeekerHorizon]int)
	prebuilt := make(map[graph.UserID][]*core.SeekerHorizon)
	for _, s := range append(append([]graph.UserID(nil), seekersA...), seekersB...) {
		hs := make([]*core.SeekerHorizon, versions)
		for v := 0; v < versions; v++ {
			h := horizonFor(t, e, s)
			versionOf[h] = v
			hs[v] = h
		}
		prebuilt[s] = hs
	}

	// svcMu plays the service mutex: compaction bumps the version and
	// invalidates under it; queries pin (version, generation) under it.
	var svcMu sync.Mutex
	graphVer := 0

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the mutator: versions-1 compactions with friend edges
		defer wg.Done()
		for v := 1; v < versions; v++ {
			svcMu.Lock()
			graphVer = v
			c.InvalidateEdges([][2]graph.UserID{{0, 1}})
			svcMu.Unlock()
		}
	}()

	var staleMu sync.Mutex
	var stale []int // (servedVersion, pinnedVersion) pairs, flattened
	var hitsB int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				var s graph.UserID
				affected := i%2 == 0
				if affected {
					s = seekersA[(r+i)%len(seekersA)]
				} else {
					s = seekersB[(r+i)%len(seekersB)]
				}
				svcMu.Lock()
				v := graphVer
				gen := c.Generation()
				svcMu.Unlock()
				if h, ok := c.Lookup(s, gen, 0); ok {
					if affected {
						if got := versionOf[h]; got != v {
							staleMu.Lock()
							stale = append(stale, got, v)
							staleMu.Unlock()
						}
					} else {
						staleMu.Lock()
						hitsB++
						staleMu.Unlock()
					}
					continue
				}
				// Miss: "materialize" from the pinned version and offer it
				// back under the pinned generation. The bracket must refuse
				// it if a compaction ran meanwhile.
				if affected {
					c.Put(s, gen, prebuilt[s][v])
				} else {
					c.Put(s, gen, prebuilt[s][0])
				}
			}
		}(r)
	}
	wg.Wait()

	if len(stale) > 0 {
		t.Fatalf("served %d stale horizons; first: version %d under pinned version %d",
			len(stale)/2, stale[0], stale[1])
	}
	if hitsB == 0 {
		t.Fatal("unaffected seekers never hit: edge scoping is not retaining survivors")
	}
	// Final state: with mutations quiesced, one more round per affected
	// seeker must converge to serving exactly the latest version.
	gen := c.Generation()
	for _, s := range seekersA {
		c.Put(s, gen, prebuilt[s][graphVer])
		h, ok := c.Lookup(s, gen, 0)
		if !ok {
			t.Fatalf("seeker %d: final Put not served", s)
		}
		if versionOf[h] != graphVer {
			t.Fatalf("seeker %d: final horizon version %d, want %d", s, versionOf[h], graphVer)
		}
	}
}
