package qcache

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

// componentsEngine builds a graph of disjoint line components, each
// comp users long: users [0, comp) form component 0, [comp, 2*comp)
// component 1, and so on. Horizons never cross components, which is
// what edge-scoped invalidation tests need.
func componentsEngine(t testing.TB, components, comp int) *core.Engine {
	t.Helper()
	n := components * comp
	gb := graph.NewBuilder(n)
	for c := 0; c < components; c++ {
		base := c * comp
		for u := 0; u < comp-1; u++ {
			gb.AddEdge(graph.UserID(base+u), graph.UserID(base+u+1), 0.5)
		}
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(n, n, 1)
	for u := 0; u < n; u++ {
		tb.Add(int32(u), tagstore.ItemID(u), 0)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInvalidateEdgeScopedToMembers(t *testing.T) {
	e := componentsEngine(t, 2, 4) // components {0..3} and {4..7}
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	c.Put(5, gen, horizonFor(t, e, 5))

	// A mutation inside component 0 must drop seeker 0's horizon (it
	// contains users 1 and 2) and leave seeker 5's untouched.
	if n := c.InvalidateEdge(1, 2); n != 1 {
		t.Fatalf("InvalidateEdge dropped %d entries, want 1", n)
	}
	ngen := c.Generation()
	if ngen != gen+1 {
		t.Fatalf("generation %d after edge invalidation, want %d", ngen, gen+1)
	}
	if _, ok := c.Get(0, ngen); ok {
		t.Fatal("affected horizon served after edge invalidation")
	}
	// The survivor stays a hit under the NEW generation: that is the
	// whole point of edge scoping.
	if _, ok := c.Get(5, ngen); !ok {
		t.Fatal("unaffected horizon dropped by edge invalidation")
	}
	s := c.Counters()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
}

func TestInvalidateEdgeBracketsPut(t *testing.T) {
	e := componentsEngine(t, 2, 4)
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	h := horizonFor(t, e, 5) // component 1: unrelated to the edge below
	// The graph moved (in component 0) while the horizon was being
	// built. The bracket must still refuse the insert: the cache cannot
	// prove which snapshot the horizon was computed from.
	c.InvalidateEdge(0, 1)
	if c.Put(5, gen, h) {
		t.Fatal("Put accepted a horizon bracketed by an edge invalidation")
	}
	if !c.Put(5, c.Generation(), horizonFor(t, e, 5)) {
		t.Fatal("current-generation Put refused")
	}
}

func TestInvalidateEdgesBatchOneGeneration(t *testing.T) {
	e := componentsEngine(t, 3, 3) // {0,1,2} {3,4,5} {6,7,8}
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	c.Put(3, gen, horizonFor(t, e, 3))
	c.Put(6, gen, horizonFor(t, e, 6))
	if n := c.InvalidateEdges([][2]graph.UserID{{0, 1}, {4, 5}}); n != 2 {
		t.Fatalf("dropped %d entries, want 2", n)
	}
	if got := c.Generation(); got != gen+1 {
		t.Fatalf("batch invalidation bumped generation to %d, want %d", got, gen+1)
	}
	if _, ok := c.Get(6, c.Generation()); !ok {
		t.Fatal("survivor dropped")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestWildcardEntriesDropOnAnyEdge(t *testing.T) {
	e := componentsEngine(t, 2, 4)
	c, err := NewWithPolicy(8, Policy{MaxTrackedMembers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0)) // 4 users > cap 1 → wildcard
	if got := c.TrackedMembers(); got != 0 {
		t.Fatalf("wildcard entry tracked %d members", got)
	}
	// An edge in the OTHER component still drops the wildcard: without a
	// member set the cache cannot prove the horizon unaffected.
	if n := c.InvalidateEdge(5, 6); n != 1 {
		t.Fatalf("edge dropped %d entries, want 1 (wildcard)", n)
	}
	if c.Len() != 0 {
		t.Fatal("wildcard entry survived edge invalidation")
	}
}

func TestMemberIndexFollowsEvictionAndRefresh(t *testing.T) {
	e := componentsEngine(t, 3, 3)
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	c.Put(3, gen, horizonFor(t, e, 3))
	c.Put(0, gen, horizonFor(t, e, 0)) // refresh in place
	c.Put(6, gen, horizonFor(t, e, 6)) // evicts seeker 3 (LRU tail)
	if _, ok := c.Get(3, gen); ok {
		t.Fatal("evicted entry still resident")
	}
	// The evicted entry's members must be gone from the reverse index:
	// an edge in its component finds nothing to drop.
	if n := c.InvalidateEdge(4, 5); n != 0 {
		t.Fatalf("edge over evicted members dropped %d entries", n)
	}
	// 3 members each for seekers 0 and 6.
	if got := c.TrackedMembers(); got != 6 {
		t.Fatalf("tracked members = %d, want 6", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	e := componentsEngine(t, 1, 8)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, err := NewWithPolicy(4, Policy{TTL: time.Minute, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	now = now.Add(59 * time.Second)
	if _, ok := c.Get(0, gen); !ok {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(2 * time.Second) // 61s since insert
	if _, ok := c.Get(0, gen); ok {
		t.Fatal("entry served past TTL")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not reaped")
	}
	s := c.Counters()
	if s.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", s.Expirations)
	}
}

func TestLookupMaxAgeTightensTTL(t *testing.T) {
	e := componentsEngine(t, 1, 8)
	now := time.Unix(1000, 0)
	c, err := NewWithPolicy(4, Policy{TTL: time.Hour, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	now = now.Add(10 * time.Second)
	if _, ok := c.Lookup(0, gen, time.Minute); !ok {
		t.Fatal("fresh-enough entry refused")
	}
	if _, ok := c.Lookup(0, gen, 5*time.Second); ok {
		t.Fatal("entry older than the per-query bound served")
	}
	// A maxAge looser than the policy TTL must not extend entry life.
	c2, err := NewWithPolicy(4, Policy{TTL: 5 * time.Second, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	gen2 := c2.Generation()
	c2.Put(0, gen2, horizonFor(t, e, 0))
	now = now.Add(10 * time.Second)
	if _, ok := c2.Lookup(0, gen2, time.Hour); ok {
		t.Fatal("per-query bound extended the policy TTL")
	}
}

func TestAdmissionMinHorizonUsers(t *testing.T) {
	e := componentsEngine(t, 2, 4) // components of 4 users
	c, err := NewWithPolicy(4, Policy{MinHorizonUsers: 5})
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	if c.Put(0, gen, horizonFor(t, e, 0)) {
		t.Fatal("undersized horizon admitted")
	}
	if got := c.Counters().AdmissionDenied; got != 1 {
		t.Fatalf("admission rejections = %d, want 1", got)
	}
	c2, err := NewWithPolicy(4, Policy{MinHorizonUsers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Put(0, c2.Generation(), horizonFor(t, e, 0)) {
		t.Fatal("qualifying horizon refused")
	}
}

func TestAdmissionMinMisses(t *testing.T) {
	e := componentsEngine(t, 1, 8)
	c, err := NewWithPolicy(4, Policy{MinMisses: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Get(0, gen) // miss #1
	if c.Put(0, gen, horizonFor(t, e, 0)) {
		t.Fatal("seeker admitted after a single miss")
	}
	c.Get(0, gen) // miss #2
	if !c.Put(0, gen, horizonFor(t, e, 0)) {
		t.Fatal("seeker refused after reaching the miss threshold")
	}
	if _, ok := c.Get(0, gen); !ok {
		t.Fatal("admitted entry not served")
	}
	// Admission resets the streak: after invalidation the seeker must
	// miss MinMisses times again.
	c.InvalidateEdge(0, 1)
	ngen := c.Generation()
	c.Get(0, ngen) // miss #1 of the new streak
	if c.Put(0, ngen, horizonFor(t, e, 0)) {
		t.Fatal("streak not reset by admission")
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{TTL: -time.Second},
		{MinHorizonUsers: -1},
		{MinMisses: -1},
		{MaxTrackedMembers: -1},
	}
	for i, p := range bad {
		if _, err := NewWithPolicy(4, p); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
}
