// Package qcache is the mutation-aware per-seeker query cache of the
// serving path: it keeps materialized seeker horizons (the
// proximity-ordered neighbourhood SocialMerge consumes) behind an LRU
// bound so a seeker's expensive graph expansion is paid once and reused
// across their queries.
//
// # Staleness
//
// Two invalidation granularities coexist:
//
//   - Invalidate bumps the cache generation, logically dropping every
//     cached entry in O(1) — the hammer for events that change the
//     friendship graph wholesale (a snapshot swap, a bulk load).
//   - InvalidateEdge(u, v) drops only the entries whose horizon could be
//     affected by a friendship mutation on edge (u, v): those whose
//     member set contains u or v. Because proximity is a hop-damped
//     maximum path product, any path from a seeker through the mutated
//     edge reaches u or v first, so a horizon containing neither is
//     provably unchanged (see core.SeekerHorizon.Users). Member sets
//     are tracked in a reverse index, making the drop proportional to
//     the number of affected entries, not the cache size.
//
// Both bump the generation, and insertion is generation-bracketed: the
// caller captures Generation before materializing and passes it to Put,
// which refuses a horizon materialized under an older generation — a
// slow expansion racing any graph mutation can never install a stale
// entry. Entries that survive an edge-scoped invalidation stay valid
// under the new generation; only a full Invalidate raises the staleness
// floor below which resident entries are reaped lazily on lookup.
//
// Tag-only mutations do not touch the friendship graph and therefore do
// not invalidate: callers bump the generation only when friend edges
// reach the queryable snapshot.
//
// # Admission and expiry
//
// Policy adds serving-fleet hygiene: TTL expires entries by age (so a
// quiet seeker's horizon does not pin memory forever), MinHorizonUsers
// refuses to cache horizons too small to be worth the slot (they are
// cheap to rematerialize), and MinMisses caches a seeker only after it
// has missed that many times (one-shot seekers never enter). Cache
// effectiveness is observable through metrics.CacheCounters (hits,
// misses, invalidations, evictions, expirations, admission rejections),
// which internal/social surfaces in its Stats and the HTTP server
// exposes on /v1/stats.
package qcache

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// DefaultMaxTrackedMembers bounds the per-entry member set used for
// edge-scoped invalidation. A horizon larger than the bound is tracked
// as a wildcard: any edge mutation invalidates it (correct, just
// coarser), keeping the reverse index's memory proportional to the
// cache, not the graph.
const DefaultMaxTrackedMembers = 1 << 14

// Policy tunes admission and expiry. The zero value admits everything
// and never expires — the behaviour before policies existed.
type Policy struct {
	// TTL expires entries older than this on lookup (0 = never).
	TTL time.Duration
	// MinHorizonUsers refuses to cache horizons with fewer materialized
	// users than this (0 or 1 = admit all sizes).
	MinHorizonUsers int
	// MinMisses admits a seeker only after it has missed this many times
	// since its last cached entry (≤ 1 = admit on first miss).
	MinMisses int
	// MaxTrackedMembers caps the per-entry member set for edge-scoped
	// invalidation; larger horizons are tracked as wildcards that any
	// edge mutation drops (0 = DefaultMaxTrackedMembers).
	MaxTrackedMembers int
	// Now is the clock (nil = time.Now); injectable for tests.
	Now func() time.Time
}

// Validate checks policy ranges.
func (p Policy) Validate() error {
	if p.TTL < 0 {
		return fmt.Errorf("qcache: negative TTL %v", p.TTL)
	}
	if p.MinHorizonUsers < 0 || p.MinMisses < 0 || p.MaxTrackedMembers < 0 {
		return fmt.Errorf("qcache: negative admission threshold")
	}
	return nil
}

// Cache is a generation-stamped LRU of seeker horizons with edge-scoped
// invalidation. It is safe for concurrent use.
type Cache struct {
	capacity int
	policy   Policy
	now      func() time.Time

	mu       sync.Mutex
	gen      uint64
	floor    uint64     // entries stamped below floor are stale (full invalidation)
	lru      *list.List // of *entry, front = most recently used
	index    map[graph.UserID]*list.Element
	byMember map[graph.UserID]map[graph.UserID]struct{} // horizon member → seekers
	wild     map[graph.UserID]struct{}                  // seekers with untracked member sets
	misses   map[graph.UserID]int                       // per-seeker miss streaks (MinMisses > 1 only)
	victims  map[graph.UserID]struct{}                  // scratch for InvalidateEdges, reused across calls
	free     []*entry                                   // recycled entries, bounded by capacity
	counters metrics.CacheCounters
}

type entry struct {
	seeker   graph.UserID
	gen      uint64
	at       time.Time
	horizon  *core.SeekerHorizon
	members  []graph.UserID // nil when wildcard
	wildcard bool
}

// New builds a cache bounded to capacity entries (≥ 1) with the zero
// Policy (admit everything, never expire).
func New(capacity int) (*Cache, error) {
	return NewWithPolicy(capacity, Policy{})
}

// NewWithPolicy builds a cache bounded to capacity entries (≥ 1) under
// the given admission/expiry policy.
func NewWithPolicy(capacity int, policy Policy) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("qcache: capacity %d must be >= 1", capacity)
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	now := policy.Now
	if now == nil {
		now = time.Now
	}
	if policy.MaxTrackedMembers == 0 {
		policy.MaxTrackedMembers = DefaultMaxTrackedMembers
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		now:      now,
		lru:      list.New(),
		index:    make(map[graph.UserID]*list.Element),
		byMember: make(map[graph.UserID]map[graph.UserID]struct{}),
		wild:     make(map[graph.UserID]struct{}),
		victims:  make(map[graph.UserID]struct{}),
	}
	if policy.MinMisses > 1 {
		c.misses = make(map[graph.UserID]int)
	}
	return c, nil
}

// Generation returns the current cache generation. Capture it before
// materializing a horizon and pass it to Put: the pair brackets the
// materialization so a concurrent graph mutation voids the insert.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Invalidate bumps the generation and raises the staleness floor,
// logically dropping every cached horizon in O(1). Call it when the
// friendship graph changed in ways edge scoping cannot bound (snapshot
// swap, bulk load, too many edges to enumerate).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.floor = c.gen
}

// InvalidateEdge drops the cached horizons a friendship mutation on
// edge (u, v) could affect — those whose member set contains u or v,
// plus every wildcard entry — and bumps the generation so in-flight
// materializations from the superseded graph cannot be installed.
// It returns the number of entries dropped.
func (c *Cache) InvalidateEdge(u, v graph.UserID) int {
	return c.InvalidateEdges([][2]graph.UserID{{u, v}})
}

// InvalidateEdges is InvalidateEdge for a batch of mutated edges under
// one lock acquisition and one generation bump — what a compaction that
// folded many Befriends calls.
func (c *Cache) InvalidateEdges(edges [][2]graph.UserID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if c.lru.Len() == 0 {
		return 0
	}
	victims := c.victims
	for _, e := range edges {
		for seeker := range c.byMember[e[0]] {
			victims[seeker] = struct{}{}
		}
		for seeker := range c.byMember[e[1]] {
			victims[seeker] = struct{}{}
		}
	}
	// Wildcard entries have no tracked members: any edge may affect them.
	for seeker := range c.wild {
		victims[seeker] = struct{}{}
	}
	for seeker := range victims {
		if el, ok := c.index[seeker]; ok {
			c.removeLocked(el)
		}
	}
	n := len(victims)
	clear(victims)
	c.counters.Invalidation(n)
	return n
}

// Get returns the seeker's cached horizon if present, unexpired, and
// valid under generation gen — the one the caller captured when pinning
// its engine snapshot, so a hit is guaranteed consistent with that
// snapshot. See Lookup for the age-bounded variant.
func (c *Cache) Get(seeker graph.UserID, gen uint64) (*core.SeekerHorizon, bool) {
	return c.Lookup(seeker, gen, 0)
}

// Lookup is Get with a per-query freshness bound: a maxAge > 0 tighter
// than the policy TTL treats older entries as expired for this lookup
// only (they are reaped, since the policy TTL would only keep them
// dying slower). Entries below the staleness floor are reaped and
// counted as invalidations; expired ones as expirations; any non-hit is
// reported as a miss.
func (c *Cache) Lookup(seeker graph.UserID, gen uint64, maxAge time.Duration) (*core.SeekerHorizon, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		// The caller pinned a superseded snapshot; nothing we hold is
		// certified consistent with it.
		c.missLocked(seeker)
		return nil, false
	}
	el, ok := c.index[seeker]
	if !ok {
		c.missLocked(seeker)
		return nil, false
	}
	e := el.Value.(*entry)
	if e.gen < c.floor {
		c.removeLocked(el)
		c.counters.Invalidation(1)
		c.missLocked(seeker)
		return nil, false
	}
	ttl := c.policy.TTL
	if maxAge > 0 && (ttl == 0 || maxAge < ttl) {
		ttl = maxAge
	}
	if ttl > 0 && c.now().Sub(e.at) > ttl {
		c.removeLocked(el)
		c.counters.Expiration(1)
		c.missLocked(seeker)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.counters.Hit()
	return e.horizon, true
}

// missLocked counts a miss and advances the seeker's admission streak.
// Callers hold c.mu.
func (c *Cache) missLocked(seeker graph.UserID) {
	c.counters.Miss()
	if c.misses != nil {
		// Bound the streak table: it only holds seekers missed since
		// their last admission, but an adversarial key stream could grow
		// it without bound — reset wholesale past a generous multiple of
		// the capacity (streaks restart, costing at most MinMisses extra
		// misses per live seeker).
		if len(c.misses) > 8*c.capacity+1024 {
			clear(c.misses)
		}
		c.misses[seeker]++
	}
}

// Put installs a horizon materialized under generation gen, evicting
// from the LRU tail to stay within capacity. It reports whether the
// entry was accepted: a horizon whose generation is no longer current
// was computed from a superseded graph and is dropped, and the
// admission policy may refuse horizons too small or seekers too cold
// to be worth a slot.
func (c *Cache) Put(seeker graph.UserID, gen uint64, h *core.SeekerHorizon) bool {
	return c.put(seeker, gen, h, true)
}

// Warm is Put minus the admission policy: it installs a horizon that
// earned its slot elsewhere — a resize pre-warm transfers horizons that
// were already resident on the replica previously owning the seeker, so
// re-running cold-start admission (miss streaks, size floors) here
// would refuse exactly the entries the transfer exists to save. The
// generation check still applies: a horizon from a superseded snapshot
// is dropped.
func (c *Cache) Warm(seeker graph.UserID, gen uint64, h *core.SeekerHorizon) bool {
	return c.put(seeker, gen, h, false)
}

func (c *Cache) put(seeker graph.UserID, gen uint64, h *core.SeekerHorizon, admit bool) bool {
	if h == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return false
	}
	if admit && c.policy.MinHorizonUsers > 1 && h.Size() < c.policy.MinHorizonUsers {
		c.counters.AdmissionDenied()
		return false
	}
	if c.misses != nil {
		if admit && c.misses[seeker] < c.policy.MinMisses {
			c.counters.AdmissionDenied()
			return false
		}
		delete(c.misses, seeker)
	}
	if el, ok := c.index[seeker]; ok {
		// Refresh in place (a concurrent duplicate materialization).
		c.dropMembersLocked(el.Value.(*entry))
		e := el.Value.(*entry)
		e.horizon = h
		e.gen = gen
		e.at = c.now()
		c.trackMembersLocked(e)
		c.lru.MoveToFront(el)
		return true
	}
	var e *entry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		e = &entry{}
	}
	e.seeker, e.gen, e.at, e.horizon = seeker, gen, c.now(), h
	c.trackMembersLocked(e)
	c.index[seeker] = c.lru.PushFront(e)
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.counters.Eviction(1)
	}
	return true
}

// Seekers returns the seekers with resident horizons, hottest (most
// recently used) first — the order a pre-warm transfer should replay
// them in, so a bounded receiver keeps the valuable ones.
func (c *Cache) Seekers() []graph.UserID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]graph.UserID, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).seeker)
	}
	return out
}

// trackMembersLocked registers the entry's horizon members in the
// reverse index, or marks it wildcard when the horizon exceeds the
// tracking bound. Callers hold c.mu.
func (c *Cache) trackMembersLocked(e *entry) {
	if e.horizon.Size() > c.policy.MaxTrackedMembers {
		e.wildcard = true
		e.members = nil
		c.wild[e.seeker] = struct{}{}
		return
	}
	e.wildcard = false
	e.members = e.horizon.Users(e.members)
	for _, u := range e.members {
		set, ok := c.byMember[u]
		if !ok {
			set = make(map[graph.UserID]struct{}, 1)
			c.byMember[u] = set
		}
		set[e.seeker] = struct{}{}
	}
}

// dropMembersLocked removes the entry from the reverse index. Callers
// hold c.mu.
func (c *Cache) dropMembersLocked(e *entry) {
	for _, u := range e.members {
		if set, ok := c.byMember[u]; ok {
			delete(set, e.seeker)
			if len(set) == 0 {
				delete(c.byMember, u)
			}
		}
	}
	e.members = e.members[:0]
	if e.wildcard {
		delete(c.wild, e.seeker)
		e.wildcard = false
	}
}

// InvalidateSeeker drops one seeker's entry (current or stale),
// reporting whether one was removed.
func (c *Cache) InvalidateSeeker(seeker graph.UserID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[seeker]
	if !ok {
		return false
	}
	c.removeLocked(el)
	c.counters.Invalidation(1)
	return true
}

// Purge empties the cache without touching the generation or counting
// invalidations (e.g. to release memory).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[graph.UserID]*list.Element)
	c.byMember = make(map[graph.UserID]map[graph.UserID]struct{})
	c.wild = make(map[graph.UserID]struct{})
	if c.misses != nil {
		clear(c.misses)
	}
}

// Len returns the number of resident entries, stale ones included.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// TrackedMembers returns the number of distinct users in the reverse
// member index — the memory-side cost of edge scoping, surfaced for
// observability.
func (c *Cache) TrackedMembers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byMember)
}

// Counters returns a snapshot of the effectiveness counters.
func (c *Cache) Counters() metrics.CacheSnapshot {
	return c.counters.Snapshot()
}

// removeLocked unlinks an element and recycles its entry shell. Only
// the shell is reused: the horizon it pointed at may still be held by
// in-flight readers, so it is unreferenced here but never written to.
// Callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.dropMembersLocked(e)
	c.lru.Remove(el)
	delete(c.index, e.seeker)
	e.horizon = nil
	if len(c.free) < c.capacity {
		c.free = append(c.free, e)
	}
}
