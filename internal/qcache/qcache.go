// Package qcache is the mutation-aware per-seeker query cache of the
// serving path: it keeps materialized seeker horizons (the
// proximity-ordered neighbourhood SocialMerge consumes) behind an LRU
// bound so a seeker's expensive graph expansion is paid once and reused
// across their queries.
//
// Staleness is handled by generation stamping rather than scanning:
// every entry is stamped with the cache generation current when its
// horizon was materialized, and any event that changes the friendship
// graph the horizons were computed from (a compacted Befriend, a
// snapshot swap) bumps the generation with Invalidate — an O(1)
// operation that logically drops every cached entry at once. Stale
// entries are reaped lazily on lookup. Insertion is also stamped:
// Put refuses a horizon materialized under an older generation, so a
// slow expansion racing a graph mutation can never install a stale
// entry.
//
// Tag-only mutations do not touch the friendship graph and therefore do
// not invalidate: callers bump the generation only when friend edges
// reach the queryable snapshot. Cache effectiveness is observable
// through metrics.CacheCounters (hits, misses, invalidations,
// evictions), which internal/social surfaces in its Stats and the HTTP
// server exposes on /v1/stats.
package qcache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Cache is a generation-stamped LRU of seeker horizons. It is safe for
// concurrent use.
type Cache struct {
	capacity int

	mu       sync.Mutex
	gen      uint64
	lru      *list.List // of *entry, front = most recently used
	index    map[graph.UserID]*list.Element
	counters metrics.CacheCounters
}

type entry struct {
	seeker  graph.UserID
	gen     uint64
	horizon *core.SeekerHorizon
}

// New builds a cache bounded to capacity entries (≥ 1).
func New(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("qcache: capacity %d must be >= 1", capacity)
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[graph.UserID]*list.Element),
	}, nil
}

// Generation returns the current cache generation. Capture it before
// materializing a horizon and pass it to Put: the pair brackets the
// materialization so a concurrent graph mutation voids the insert.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Invalidate bumps the generation, logically dropping every cached
// horizon in O(1). Call it whenever the friendship graph backing the
// horizons changes.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
}

// Get returns the seeker's cached horizon if present and stamped with
// exactly the generation gen — the one the caller captured when pinning
// its engine snapshot, so a hit is guaranteed consistent with that
// snapshot. An entry older than the cache generation is reaped and
// counted as an invalidation; any non-hit is reported as a miss.
func (c *Cache) Get(seeker graph.UserID, gen uint64) (*core.SeekerHorizon, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[seeker]
	if !ok {
		c.counters.Miss()
		return nil, false
	}
	e := el.Value.(*entry)
	if e.gen < c.gen {
		c.removeLocked(el)
		c.counters.Invalidation(1)
		c.counters.Miss()
		return nil, false
	}
	if e.gen != gen {
		c.counters.Miss()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.counters.Hit()
	return e.horizon, true
}

// Put installs a horizon materialized under generation gen, evicting
// from the LRU tail to stay within capacity. It reports whether the
// entry was accepted: a horizon whose generation is no longer current
// was computed from a superseded graph and is dropped.
func (c *Cache) Put(seeker graph.UserID, gen uint64, h *core.SeekerHorizon) bool {
	if h == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return false
	}
	if el, ok := c.index[seeker]; ok {
		// Refresh in place (a concurrent duplicate materialization).
		el.Value.(*entry).horizon = h
		el.Value.(*entry).gen = gen
		c.lru.MoveToFront(el)
		return true
	}
	c.index[seeker] = c.lru.PushFront(&entry{seeker: seeker, gen: gen, horizon: h})
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.counters.Eviction(1)
	}
	return true
}

// InvalidateSeeker drops one seeker's entry (current or stale),
// reporting whether one was removed.
func (c *Cache) InvalidateSeeker(seeker graph.UserID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[seeker]
	if !ok {
		return false
	}
	c.removeLocked(el)
	c.counters.Invalidation(1)
	return true
}

// Purge empties the cache without touching the generation or counting
// invalidations (e.g. to release memory).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.index = make(map[graph.UserID]*list.Element)
}

// Len returns the number of resident entries, stale ones included.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters returns a snapshot of the effectiveness counters.
func (c *Cache) Counters() metrics.CacheSnapshot {
	return c.counters.Snapshot()
}

// removeLocked unlinks an element. Callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	delete(c.index, el.Value.(*entry).seeker)
}
