package qcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

// testEngine builds a small line graph 0-1-2-...-(n-1) with one tagging
// action per user, enough to materialize non-trivial horizons.
func testEngine(t testing.TB, n int) *core.Engine {
	t.Helper()
	gb := graph.NewBuilder(n)
	for u := 0; u < n-1; u++ {
		gb.AddEdge(graph.UserID(u), graph.UserID(u+1), 0.5)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(n, n, 1)
	for u := 0; u < n; u++ {
		tb.Add(int32(u), tagstore.ItemID(u), 0)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func horizonFor(t testing.TB, e *core.Engine, seeker graph.UserID) *core.SeekerHorizon {
	t.Helper()
	h, err := e.MaterializeHorizon(seeker, 0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		if _, err := New(capacity); err == nil {
			t.Errorf("capacity %d accepted", capacity)
		}
	}
	if _, err := New(1); err != nil {
		t.Fatal(err)
	}
}

func TestHitMissAndLRUOrder(t *testing.T) {
	e := testEngine(t, 8)
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	if _, ok := c.Get(0, gen); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(0, gen, horizonFor(t, e, 0))
	c.Put(1, gen, horizonFor(t, e, 1))
	if h, ok := c.Get(0, gen); !ok || h.Seeker() != 0 {
		t.Fatalf("Get(0) = %v, %v", h, ok)
	}
	// 1 is now least recently used; inserting 2 evicts it.
	c.Put(2, gen, horizonFor(t, e, 2))
	if _, ok := c.Get(1, gen); ok {
		t.Fatal("evicted entry still resident")
	}
	if _, ok := c.Get(0, gen); !ok {
		t.Fatal("recently used entry evicted")
	}
	s := c.Counters()
	if s.Hits != 2 || s.Misses != 2 || s.Evictions != 1 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	e := testEngine(t, 8)
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(3, gen, horizonFor(t, e, 3))
	if _, ok := c.Get(3, gen); !ok {
		t.Fatal("fresh entry missed")
	}
	c.Invalidate()
	if _, ok := c.Get(3, c.Generation()); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not reaped: len = %d", c.Len())
	}
	s := c.Counters()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
}

func TestPutRefusesStaleGeneration(t *testing.T) {
	e := testEngine(t, 8)
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Invalidate() // the graph changed while the horizon was being built
	if c.Put(2, gen, horizonFor(t, e, 2)) {
		t.Fatal("Put accepted a horizon from a superseded generation")
	}
	if _, ok := c.Get(2, c.Generation()); ok {
		t.Fatal("stale horizon resident")
	}
	if !c.Put(2, c.Generation(), horizonFor(t, e, 2)) {
		t.Fatal("current-generation Put refused")
	}
}

func TestPutNilAndRefresh(t *testing.T) {
	e := testEngine(t, 8)
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Put(0, c.Generation(), nil) {
		t.Fatal("nil horizon accepted")
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	// A duplicate insert for the same seeker refreshes in place.
	c.Put(0, gen, horizonFor(t, e, 0))
	if c.Len() != 1 {
		t.Fatalf("len = %d after duplicate insert", c.Len())
	}
}

func TestInvalidateSeeker(t *testing.T) {
	e := testEngine(t, 8)
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	c.Put(1, gen, horizonFor(t, e, 1))
	if !c.InvalidateSeeker(0) {
		t.Fatal("resident entry not invalidated")
	}
	if c.InvalidateSeeker(0) {
		t.Fatal("absent entry reported invalidated")
	}
	if _, ok := c.Get(1, gen); !ok {
		t.Fatal("unrelated entry dropped")
	}
}

func TestPurge(t *testing.T) {
	e := testEngine(t, 8)
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	c.Put(0, gen, horizonFor(t, e, 0))
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len = %d after Purge", c.Len())
	}
	if c.Generation() != gen {
		t.Fatal("Purge moved the generation")
	}
}

// TestConcurrentUse exercises the cache under racing readers, writers,
// and invalidators; run with -race.
func TestConcurrentUse(t *testing.T) {
	e := testEngine(t, 16)
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seeker := graph.UserID((w + i) % 16)
				switch i % 5 {
				case 0:
					c.Invalidate()
				case 1:
					c.InvalidateSeeker(seeker)
				default:
					gen := c.Generation()
					if _, ok := c.Get(seeker, gen); !ok {
						c.Put(seeker, gen, horizonFor(t, e, seeker))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Counters()
	if s.Hits+s.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if got := fmt.Sprint(s.HitRate()); got == "NaN" {
		t.Fatalf("hit rate = %s", got)
	}
}
