package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// writeLog creates a log with n single-byte records and returns the
// directory and segment paths sorted by first LSN.
func writeLog(t *testing.T, n int, segBytes int64) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(Type(1+i%3), []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	return dir, paths
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir, paths := writeLog(t, 10, 1<<20)
	last := paths[len(paths)-1]

	// Chop three bytes off the final frame: a torn write.
	if err := os.Truncate(last, fileSize(t, last)-3); err != nil {
		t.Fatal(err)
	}

	// Replay tolerates it and yields 9 records.
	recs := collect(t, dir)
	if len(recs) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(recs))
	}

	// Open truncates the tail and appends continue from LSN 10.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(7, []byte("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 10 {
		t.Fatalf("append after torn-tail recovery: lsn = %d, want 10", lsn)
	}
	l.Close()

	recs = collect(t, dir)
	if len(recs) != 10 || recs[9].Type != 7 || string(recs[9].Data) != "replacement" {
		t.Fatalf("post-recovery replay wrong: %+v", recs)
	}
}

func TestBitFlipInTailFrameDropsOnlyThatFrame(t *testing.T) {
	dir, paths := writeLog(t, 5, 1<<20)
	last := paths[len(paths)-1]

	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the last frame's payload region (well after the
	// preceding frames; the final frame is 2+1+2+4 = 9 bytes).
	raw[len(raw)-6] ^= 0x40
	if err := os.WriteFile(last, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, dir)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records after tail bit flip, want 4", len(recs))
	}

	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, _ := l.Append(1, []byte("x")); lsn != 5 {
		t.Fatalf("lsn after dropping damaged frame = %d, want 5", lsn)
	}
	l.Close()
}

func TestCorruptionInNonLastSegmentIsFatal(t *testing.T) {
	dir, paths := writeLog(t, 40, 128)
	if len(paths) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(paths))
	}
	victim := paths[0]
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+3] ^= 0xff // inside the first frame
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Replay(dir, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay with mid-log damage: err = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-log damage: err = %v, want ErrCorrupt", err)
	}
}

func TestHeaderDamageIsFatal(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func([]byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"version", func(b []byte) { b[4] = 99 }},
		{"lsn", func(b []byte) { b[5] ^= 1 }},
		{"crc", func(b []byte) { b[13] ^= 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, paths := writeLog(t, 3, 1<<20)
			raw, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(raw)
			if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Replay(dir, func(Record) error { return nil }); err == nil {
				t.Fatal("Replay accepted a damaged header")
			}
		})
	}
}

func TestHeaderOnlySegmentReplaysEmpty(t *testing.T) {
	dir, paths := writeLog(t, 0, 1<<20)
	if len(paths) != 1 {
		t.Fatalf("expected the initial empty segment, got %v", paths)
	}
	if got := len(collect(t, dir)); got != 0 {
		t.Fatalf("records in empty segment: %d", got)
	}
	// Truncated header (file shorter than headerSize) is fatal.
	if err := os.Truncate(paths[0], headerSize-2); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, func(Record) error { return nil }); err == nil {
		t.Fatal("Replay accepted a truncated header")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir, _ := writeLog(t, 4, 1<<20)
	for _, name := range []string{"notes.txt", "wal-0001.seg", "wal-zzzzzzzzzzzzzzzz.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(collect(t, dir)); got != 4 {
		t.Fatalf("replayed %d with foreign files present, want 4", got)
	}
}

// TestProgressiveTruncation chops the log byte by byte from the end:
// replay must never error (single segment) and the record count must be
// non-increasing — no resurrection, no crash, regardless of where the
// cut lands.
func TestProgressiveTruncation(t *testing.T) {
	dir, paths := writeLog(t, 8, 1<<20)
	if len(paths) != 1 {
		t.Fatalf("want single segment, got %d", len(paths))
	}
	seg := paths[0]
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 9 // sentinel above the real maximum of 8
	for cut := len(orig); cut >= headerSize; cut-- {
		if err := os.WriteFile(seg, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		count := 0
		if _, err := Replay(dir, func(Record) error { count++; return nil }); err != nil {
			t.Fatalf("cut at %d bytes: %v", cut, err)
		}
		if count > prev {
			t.Fatalf("cut at %d bytes resurrected records: %d after %d", cut, count, prev)
		}
		prev = count
	}
	if prev != 0 {
		t.Fatalf("header-only file still yields %d records", prev)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir, _ := writeLog(t, 5, 1<<20)
	boom := errors.New("boom")
	n := 0
	_, err := Replay(dir, func(Record) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times, want 3", n)
	}
}
