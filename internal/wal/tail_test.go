package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// TestReadFromBasics appends records across several segments and checks
// ReadFrom delivers exactly the requested suffix, in order, with the
// head reported correctly.
func TestReadFromBasics(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 40
	for i := 1; i <= n; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("want multiple segments, got %d", l.Segments())
	}
	for _, from := range []uint64{0, 1, 2, 17, 39, 40, 41, 100} {
		var got []uint64
		head, err := l.ReadFrom(from, func(r Record) error {
			if want := fmt.Sprintf("record-%d", r.LSN); string(r.Data) != want {
				t.Fatalf("lsn %d payload = %q, want %q", r.LSN, r.Data, want)
			}
			got = append(got, r.LSN)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		if head != n {
			t.Fatalf("ReadFrom(%d) head = %d, want %d", from, head, n)
		}
		start := from
		if start == 0 {
			start = 1
		}
		wantLen := 0
		if start <= n {
			wantLen = int(n - start + 1)
		}
		if len(got) != wantLen {
			t.Fatalf("ReadFrom(%d) delivered %d records, want %d", from, len(got), wantLen)
		}
		for j, lsn := range got {
			if lsn != start+uint64(j) {
				t.Fatalf("ReadFrom(%d) record %d has lsn %d, want %d", from, j, lsn, start+uint64(j))
			}
		}
	}
}

// TestReadFromConcurrentAppends races a tailing reader against a
// writer: every read must deliver a dense prefix-suffix with no torn
// frames and no missing records below the captured head.
func TestReadFromConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, err := l.Append(2, []byte(fmt.Sprintf("payload %d with some girth", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var next uint64 = 1
		head, err := l.ReadFrom(1, func(r Record) error {
			if r.LSN != next {
				return fmt.Errorf("gap: got lsn %d, want %d", r.LSN, next)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("concurrent ReadFrom: %v", err)
		}
		if next-1 != head {
			t.Fatalf("delivered through %d, head %d", next-1, head)
		}
	}
	wg.Wait()
}

// TestReadFromTornTail truncates the log mid-record out-of-band (the
// disk-corruption scenario) and checks ReadFrom reports ErrCorrupt
// instead of silently handing over a torn prefix — the contract a
// replication catch-up's clean-error-and-retry path depends on.
func TestReadFromTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 8; i++ {
		if _, err := l.Append(1, []byte("0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Shear the active segment mid-record.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].path
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-10); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	_, err = l.ReadFrom(1, func(Record) error { delivered++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadFrom over torn tail: err = %v, want ErrCorrupt", err)
	}
	if delivered >= 8 {
		t.Fatalf("torn record delivered anyway (%d records)", delivered)
	}
}

// TestReadFromFnError checks reader callback errors surface verbatim.
func TestReadFromFnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := l.ReadFrom(1, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("fn error = %v, want boom", err)
	}
}

// TestTruncationBarrier checks SetBarrier pins the suffix a lagging
// reader still needs: TruncateThrough may remove sealed segments only
// below the barrier, and records at or above it stay readable.
func TestTruncationBarrier(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 96, Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 60
	for i := 1; i <= n; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want >=3 segments, got %d", l.Segments())
	}

	l.SetBarrier(20)
	if err := l.TruncateThrough(n); err != nil {
		t.Fatal(err)
	}
	// Everything from the barrier on must still be readable.
	var got []uint64
	if _, err := l.ReadFrom(20, func(r Record) error { got = append(got, r.LSN); return nil }); err != nil {
		t.Fatalf("ReadFrom(barrier) after truncation: %v", err)
	}
	if len(got) != n-19 || got[0] != 20 || got[len(got)-1] != n {
		t.Fatalf("post-truncation suffix = %d records [%d..%d], want [20..%d]",
			len(got), got[0], got[len(got)-1], n)
	}
	// The prefix really was reclaimed (some segment files removed).
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].firstLSN == 1 {
		t.Fatal("TruncateThrough under a high barrier reclaimed nothing")
	}
	if segs[0].firstLSN > 20 {
		t.Fatalf("truncation crossed the barrier: first retained lsn %d > 20", segs[0].firstLSN)
	}

	// Raising the barrier and truncating again reclaims more, never past it.
	l.SetBarrier(50)
	if err := l.TruncateThrough(n); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadFrom(50, func(Record) error { return nil }); err != nil {
		t.Fatalf("ReadFrom(50) after second truncation: %v", err)
	}
	if _, err := l.ReadFrom(1, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadFrom(1) on truncated prefix err = %v, want ErrCorrupt", err)
	}
}

// TestReadFromClosed pins the closed-log behaviour.
func TestReadFromClosed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadFrom(1, func(Record) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrom on closed log err = %v, want ErrClosed", err)
	}
}
