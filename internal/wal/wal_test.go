package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, dir string) []Record {
	t.Helper()
	var recs []Record
	_, err := Replay(dir, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Type: r.Type, Data: append([]byte(nil), r.Data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		typ  Type
		data string
	}{
		{1, "hello"},
		{2, ""},
		{3, "a longer payload with some structure: 42"},
		{1, "bye"},
	}
	for i, w := range want {
		lsn, err := l.Append(w.typ, []byte(w.data))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn = %d, want %d", i, lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, dir)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != want[i].typ || string(r.Data) != want[i].data {
			t.Errorf("record %d = {%d %d %q}, want {%d %d %q}",
				i, r.LSN, r.Type, r.Data, i+1, want[i].typ, want[i].data)
		}
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	next, err := Replay(filepath.Join(t.TempDir(), "nonexistent"), func(Record) error { return nil })
	if err != nil || next != 1 {
		t.Fatalf("missing dir: next=%d err=%v, want 1 nil", next, err)
	}

	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	next, err = Replay(dir, func(Record) error { return nil })
	if err != nil || next != 1 {
		t.Fatalf("empty log: next=%d err=%v, want 1 nil", next, err)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l2.Append(2, []byte("resumed"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("resumed lsn = %d, want 6", lsn)
	}
	l2.Close()

	recs := collect(t, dir)
	if len(recs) != 6 || recs[5].Type != 2 || string(recs[5].Data) != "resumed" {
		t.Fatalf("unexpected tail after reopen: %+v", recs)
	}
}

func TestRotationCreatesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'x'}, 40)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("segments = %d, want >= 3 with 128-byte rotation", got)
	}
	l.Close()

	recs := collect(t, dir)
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d; segment boundary broke numbering", i, r.LSN)
		}
	}
}

func TestTruncateThroughDropsOnlyCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'y'}, 40)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := l.Segments()
	if segsBefore < 4 {
		t.Fatalf("need >=4 segments for the test, got %d", segsBefore)
	}

	// Nothing is covered by LSN 0: no segment may vanish.
	if err := l.TruncateThrough(0); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != segsBefore {
		t.Fatalf("TruncateThrough(0) dropped segments: %d -> %d", segsBefore, l.Segments())
	}

	if err := l.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= segsBefore {
		t.Fatalf("TruncateThrough(6) dropped nothing (still %d segments)", l.Segments())
	}
	l.Close()

	recs := collect(t, dir)
	if len(recs) == 0 {
		t.Fatal("all records gone after partial truncation")
	}
	if first := recs[0].LSN; first > 7 {
		t.Fatalf("truncation removed records beyond lsn 6: first surviving lsn %d", first)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			t.Fatalf("gap in surviving lsns at %d", i)
		}
	}
	if last := recs[len(recs)-1].LSN; last != 12 {
		t.Fatalf("last lsn = %d, want 12", last)
	}
}

func TestRotateThenTruncateLeavesOnlyActive(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint pattern: cut at a boundary, then drop the prefix.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("segments after checkpoint truncate = %d, want 1", got)
	}
	lsn, err := l.Append(2, []byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-checkpoint lsn = %d, want 11", lsn)
	}
	l.Close()

	recs := collect(t, dir)
	if len(recs) != 1 || recs[0].LSN != 11 {
		t.Fatalf("replay after checkpoint = %+v, want single record lsn 11", recs)
	}
}

func TestSyncManualStillReplaysAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if got := len(collect(t, dir)); got != 100 {
		t.Fatalf("replayed %d, want 100", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(1, nil); err != ErrClosed {
		t.Fatalf("Append after Close: err = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close: err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized append succeeded")
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, lsn := range []uint64{1, 42, 1 << 40, ^uint64(0)} {
		name := segmentName(lsn)
		got, ok := parseSegmentName(name)
		if !ok || got != lsn {
			t.Errorf("parse(segmentName(%d)) = %d,%v", lsn, got, ok)
		}
	}
	for _, bad := range []string{"wal-xyz.seg", "wal-.seg", "other.seg", "wal-0001.seg", "wal-0000000000000001.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parseSegmentName(%q) accepted", bad)
		}
	}
}

// TestQuickRoundTrip drives random payload batches through append,
// reopen, and replay: whatever was acknowledged must come back intact
// and in order (property-based).
func TestQuickRoundTrip(t *testing.T) {
	prop := func(batches [][]byte, segBytes uint16) bool {
		dir := t.TempDir()
		opts := Options{SegmentBytes: int64(segBytes%512) + 64, Sync: SyncManual}
		l, err := Open(dir, opts)
		if err != nil {
			return false
		}
		for i, b := range batches {
			if len(b) > 1024 {
				b = b[:1024]
				batches[i] = b
			}
			if _, err := l.Append(Type(i%7), b); err != nil {
				return false
			}
		}
		if err := l.Close(); err != nil {
			return false
		}
		recs := collect(t, dir)
		if len(recs) != len(batches) {
			return false
		}
		for i, r := range recs {
			if r.LSN != uint64(i+1) || r.Type != Type(i%7) || !bytes.Equal(r.Data, batches[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendSyncManual(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncManual})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{'p'}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Sync: SyncManual})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'r'}, 64)
	const n = 10000
	for i := 0; i < n; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if _, err := Replay(dir, func(Record) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d, want %d", count, n)
		}
	}
}

func ExampleLog() {
	dir, _ := os.MkdirTemp("", "wal-example")
	defer os.RemoveAll(dir)

	l, _ := Open(dir, Options{})
	l.Append(1, []byte("first"))
	l.Append(2, []byte("second"))
	l.Close()

	Replay(dir, func(r Record) error {
		fmt.Printf("lsn=%d type=%d data=%s\n", r.LSN, r.Type, r.Data)
		return nil
	})
	// Output:
	// lsn=1 type=1 data=first
	// lsn=2 type=2 data=second
}
