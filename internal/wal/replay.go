package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Replay reads the log in dir in LSN order, invoking fn for every
// intact record. A torn or corrupt tail in the last segment ends the
// replay silently (those records were never acknowledged under
// SyncAlways, or were acknowledged-but-lost under SyncManual — the
// contract the caller chose). Damage anywhere else returns ErrCorrupt.
// It returns the LSN the next append would receive.
//
// Replay does not modify the log and may run on a live directory copy;
// to both replay and append, use Open (which truncates the torn tail)
// followed by the caller's own state reconstruction.
func Replay(dir string, fn func(Record) error) (nextLSN uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 1, nil
		}
		return 0, err
	}
	nextLSN = 1
	for i, seg := range segs {
		end, tailOK, err := scanSegment(seg, fn)
		if err != nil {
			return 0, err
		}
		if !tailOK && i != len(segs)-1 {
			return 0, fmt.Errorf("%w: damaged frame in non-last segment %s", ErrCorrupt, seg.path)
		}
		nextLSN = end
	}
	return nextLSN, nil
}

// errStop is an internal sentinel used by scanners that want to halt
// early without signalling an error.
var errStop = errors.New("wal: stop scan")

// scanSegment validates seg's header and streams its records into fn.
// It returns the LSN after the last intact record and whether the
// segment ended cleanly (tailOK == false means a truncated or
// CRC-damaged final frame was found; everything before it was
// delivered). Errors from fn abort the scan and are returned verbatim.
func scanSegment(seg segmentInfo, fn func(Record) error) (endLSN uint64, tailOK bool, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	if err := checkHeader(br, seg); err != nil {
		return 0, false, err
	}

	lsn := seg.firstLSN
	var payload []byte
	for {
		rec, ok, err := readFrame(br, &payload)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			return lsn, false, nil
		}
		if rec == nil { // clean EOF
			return lsn, true, nil
		}
		rec.LSN = lsn
		if err := fn(*rec); err != nil {
			return 0, false, err
		}
		lsn++
	}
}

func checkHeader(br *bufio.Reader, seg segmentInfo) error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: short header in %s", ErrCorrupt, seg.path)
	}
	if [4]byte(hdr[:4]) != segMagic {
		return fmt.Errorf("%w: bad magic in %s", ErrCorrupt, seg.path)
	}
	if hdr[4] != version {
		return fmt.Errorf("wal: unsupported version %d in %s", hdr[4], seg.path)
	}
	if binary.LittleEndian.Uint64(hdr[5:13]) != seg.firstLSN {
		return fmt.Errorf("%w: header lsn disagrees with filename in %s", ErrCorrupt, seg.path)
	}
	if binary.LittleEndian.Uint32(hdr[13:]) != crc32.ChecksumIEEE(hdr[:13]) {
		return fmt.Errorf("%w: header checksum mismatch in %s", ErrCorrupt, seg.path)
	}
	return nil
}

// readFrame decodes one frame. Return conventions:
//   - (rec, true, nil): an intact frame.
//   - (nil, true, nil): clean EOF at a frame boundary.
//   - (nil, false, nil): torn/corrupt frame (incomplete bytes or CRC
//     mismatch) — the caller decides whether that is tolerable.
//
// *payload is reused across calls to avoid per-frame allocation.
func readFrame(br *bufio.Reader, payload *[]byte) (*Record, bool, error) {
	// A frame boundary is the only place clean EOF can occur.
	if _, err := br.Peek(1); err == io.EOF {
		return nil, true, nil
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, false, nil // partial length varint: torn
	}
	if size > maxPayload {
		return nil, false, nil // absurd length: treat as damage
	}
	need := int(size) + 1 + 4 // type + payload + crc
	if cap(*payload) < need {
		*payload = make([]byte, need)
	}
	buf := (*payload)[:need]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, false, nil // short frame: torn
	}
	body, crcBytes := buf[:1+size], buf[1+size:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, false, nil
	}
	return &Record{Type: Type(body[0]), Data: body[1:]}, true, nil
}

// segmentPrefixLen returns the byte offset in seg just after record
// endLSN-1, i.e. the length of the intact prefix holding records
// [firstLSN, endLSN). Used by Open to truncate a torn tail.
func segmentPrefixLen(seg segmentInfo, endLSN uint64) (int64, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)

	if err := checkHeader(br, seg); err != nil {
		return 0, err
	}
	good := int64(headerSize)
	lsn := seg.firstLSN
	var payload []byte
	for lsn < endLSN {
		rec, ok, err := readFrame(br, &payload)
		if err != nil || !ok || rec == nil {
			return 0, fmt.Errorf("%w: segment %s shrank during recovery", ErrCorrupt, seg.path)
		}
		good = cr.n - int64(br.Buffered())
		lsn++
	}
	return good, nil
}

// countingReader counts bytes handed to the downstream reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
