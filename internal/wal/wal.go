// Package wal implements a segmented write-ahead log: the durability
// substrate under the dynamic-updates layer (internal/durable). Every
// mutation is appended as a typed, CRC-protected record before it is
// applied, so a crash loses at most the un-synced suffix and never
// corrupts what was acknowledged.
//
// On-disk layout. The log is a directory of segment files named
// wal-%016x.seg, where the hex number is the LSN of the segment's first
// record. Each segment starts with a fixed header and is followed by a
// sequence of frames:
//
//	header: magic "FWAL" | version u8 | firstLSN u64-LE | crc32 u32-LE
//	frame:  payloadLen uvarint | type u8 | payload | crc32 u32-LE
//
// The frame checksum covers the type byte and payload. LSNs are dense:
// record n of a segment with firstLSN f has LSN f+n.
//
// Torn-tail semantics. A crash can leave a partially written frame at
// the end of the *last* segment. Open and Replay both stop at the first
// frame of the last segment that is incomplete or fails its checksum;
// Open additionally truncates the file there so the next append starts
// from a clean boundary. The same damage in any non-last segment is
// unrecoverable corruption and is reported as ErrCorrupt — acknowledged
// history must never silently vanish.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type tags a record with its application-level meaning. The WAL itself
// is agnostic; internal/durable defines the concrete types.
type Type uint8

// Record is one replayed log entry.
type Record struct {
	// LSN is the record's log sequence number (dense, starting at 1).
	LSN uint64
	// Type is the application-level record type.
	Type Type
	// Data is the record payload. During replay the slice is only valid
	// until the callback returns; copy it to retain it.
	Data []byte
}

// SyncPolicy controls when appends are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: maximum durability, one
	// fsync per mutation.
	SyncAlways SyncPolicy = iota
	// SyncManual leaves fsync to explicit Sync calls (group commit);
	// a crash may lose the records appended since the last Sync.
	SyncManual
)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches this many bytes a new segment is started. Default 4 MiB.
	SegmentBytes int64
	// Sync selects the fsync policy. Default SyncAlways.
	Sync SyncPolicy
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// ErrCorrupt reports damage in the middle of acknowledged history (a
// bad frame in a non-last segment, or a bad segment header).
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

const (
	headerSize  = 4 + 1 + 8 + 4
	version     = 1
	maxPayload  = 1 << 26 // 64 MiB sanity bound on a single record
	segSuffix   = ".seg"
	segPrefix   = "wal-"
	lsnHexWidth = 16
)

var segMagic = [4]byte{'F', 'W', 'A', 'L'}

// Log is an append-only segmented write-ahead log. It is safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	closed      bool
	segs        []segmentInfo // sorted by firstLSN; last is active
	active      *os.File
	bw          *bufio.Writer
	activeBytes int64
	nextLSN     uint64
	dirSynced   bool
	barrier     uint64 // records with LSN >= barrier survive TruncateThrough (0 = none)
}

type segmentInfo struct {
	path     string
	firstLSN uint64
}

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%s%0*x%s", segPrefix, lsnHexWidth, firstLSN, segSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != lsnHexWidth {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the segment files in dir sorted by firstLSN.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{path: filepath.Join(dir, e.Name()), firstLSN: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	for i := 1; i < len(segs); i++ {
		if segs[i].firstLSN <= segs[i-1].firstLSN {
			return nil, fmt.Errorf("%w: duplicate segment lsn %d", ErrCorrupt, segs[i].firstLSN)
		}
	}
	return segs, nil
}

// Open opens (creating if necessary) the log in dir, scans existing
// segments, truncates a torn tail in the last segment, and positions
// the log for appending.
func Open(dir string, opts Options) (*Log, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, segs: segs, nextLSN: 1}

	// Validate all but the last segment strictly; scan the last one with
	// torn-tail tolerance to find the append position.
	for i, seg := range segs {
		last := i == len(segs)-1
		end, tailOK, err := scanSegment(seg, func(Record) error { return nil })
		if err != nil {
			return nil, err
		}
		if !tailOK && !last {
			return nil, fmt.Errorf("%w: damaged frame in non-last segment %s", ErrCorrupt, seg.path)
		}
		l.nextLSN = end
		if last && !tailOK {
			off, err := segmentPrefixLen(seg, end)
			if err != nil {
				return nil, err
			}
			if err := os.Truncate(seg.path, off); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
		}
	}

	if len(segs) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Re-open the last segment for appending.
	lastSeg := segs[len(segs)-1]
	f, err := os.OpenFile(lastSeg.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.active = f
	l.bw = bufio.NewWriter(f)
	l.activeBytes = st.Size()
	return l, nil
}

// startSegment creates a fresh segment whose first record will carry
// firstLSN. Caller holds l.mu (or is the constructor).
func (l *Log) startSegment(firstLSN uint64) error {
	path := filepath.Join(l.dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:4], segMagic[:])
	hdr[4] = version
	binary.LittleEndian.PutUint64(hdr[5:13], firstLSN)
	binary.LittleEndian.PutUint32(hdr[13:], crc32.ChecksumIEEE(hdr[:13]))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.bw = bufio.NewWriter(f)
	l.activeBytes = headerSize
	l.segs = append(l.segs, segmentInfo{path: path, firstLSN: firstLSN})
	// Make the new directory entry durable once; cheap insurance that a
	// crash cannot lose a whole synced segment.
	if !l.dirSynced {
		if d, err := os.Open(l.dir); err == nil {
			d.Sync()
			d.Close()
		}
		l.dirSynced = true
	}
	return nil
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is durable when Append returns.
func (l *Log) Append(t Type, data []byte) (uint64, error) {
	if len(data) > maxPayload {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds limit %d", len(data), maxPayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.activeBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(data)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(t)})
	crc.Write(data)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())

	if _, err := l.bw.Write(lenBuf[:n]); err != nil {
		return 0, err
	}
	if err := l.bw.WriteByte(byte(t)); err != nil {
		return 0, err
	}
	if _, err := l.bw.Write(data); err != nil {
		return 0, err
	}
	if _, err := l.bw.Write(crcBuf[:]); err != nil {
		return 0, err
	}
	l.activeBytes += int64(n) + 1 + int64(len(data)) + 4
	l.nextLSN++

	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment and starts a new one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	return l.startSegment(l.nextLSN)
}

func (l *Log) syncLocked() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	return l.active.Sync()
}

// Sync flushes buffered appends and forces them to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.bw.Flush(); err != nil {
		l.active.Close()
		return err
	}
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return err
	}
	return l.active.Close()
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// TruncateThrough removes whole segments all of whose records have
// LSN ≤ lsn. The active segment is never removed, and a barrier set
// with SetBarrier caps how far truncation reaches: records with
// LSN ≥ barrier always survive. Use after a checkpoint (or, for a
// replication log, the fleet's minimum applied LSN) has made the
// prefix redundant.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.barrier > 0 && lsn >= l.barrier {
		lsn = l.barrier - 1
	}
	keepFrom := 0
	for i := 0; i < len(l.segs)-1; i++ {
		// Segment i spans [firstLSN, segs[i+1].firstLSN); removable when
		// its last record is ≤ lsn.
		if l.segs[i+1].firstLSN-1 <= lsn {
			if err := os.Remove(l.segs[i].path); err != nil {
				return err
			}
			keepFrom = i + 1
		} else {
			break
		}
	}
	l.segs = append([]segmentInfo(nil), l.segs[keepFrom:]...)
	return nil
}

// Rotate seals the active segment and starts a new one regardless of
// size. Exposed so checkpoints can cut the log at a known boundary:
// rotate, checkpoint, then TruncateThrough(checkpointLSN-1).
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

// SetBarrier establishes a truncation barrier: records with LSN ≥ lsn
// survive every later TruncateThrough, whatever its argument. A
// replication log sets it to the fleet's minimum applied LSN + 1 so a
// lagging replica's catch-up suffix can never be reclaimed under it.
// 0 removes the barrier.
func (l *Log) SetBarrier(lsn uint64) {
	l.mu.Lock()
	l.barrier = lsn
	l.mu.Unlock()
}

// Barrier returns the current truncation barrier (0 = none).
func (l *Log) Barrier() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.barrier
}

// ReadFrom invokes fn, in LSN order, for every record with LSN ≥ from
// up to the log head captured when the call started, and returns that
// head. It is safe to run concurrently with appends: buffered writes
// are flushed first, records past the captured head are not delivered
// (a frame a concurrent append is still writing is never surfaced),
// and segments below a truncation barrier cannot vanish mid-read.
//
// Unlike Replay's torn-tail tolerance, every record up to the captured
// head was acknowledged, so damage anywhere in that range — including
// an externally truncated tail — is reported as ErrCorrupt, never
// silently skipped: a replication catch-up must fail cleanly rather
// than hand a replica a torn prefix it would mistake for the full
// stream.
func (l *Log) ReadFrom(from uint64, fn func(Record) error) (head uint64, err error) {
	return l.ReadThrough(from, ^uint64(0), fn)
}

// ReadThrough is ReadFrom bounded above: it delivers the records with
// from ≤ LSN ≤ min(through, head) and returns the head captured when
// the call started. A replicated log uses it for committed-prefix
// reads — streaming exactly the quorum-acknowledged range while later,
// possibly still-uncommitted, appends stay invisible to the reader.
// The same ErrCorrupt contract as ReadFrom applies to the requested
// range.
func (l *Log) ReadThrough(from, through uint64, fn func(Record) error) (head uint64, err error) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if err := l.bw.Flush(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	segs := append([]segmentInfo(nil), l.segs...)
	head = l.nextLSN - 1
	l.mu.Unlock()

	upper := head
	if through < upper {
		upper = through
	}
	if from > upper {
		return head, nil
	}
	if len(segs) == 0 || from < segs[0].firstLSN {
		return head, fmt.Errorf("%w: lsn %d precedes the retained log start", ErrCorrupt, from)
	}
	delivered := from - 1 // highest LSN handed to fn so far
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].firstLSN <= from {
			continue // whole segment below the requested range
		}
		if seg.firstLSN > upper {
			break
		}
		_, tailOK, scanErr := scanSegment(seg, func(r Record) error {
			if r.LSN < from {
				return nil
			}
			if r.LSN > upper {
				return errStop
			}
			delivered = r.LSN
			return fn(r)
		})
		if scanErr != nil {
			if errors.Is(scanErr, errStop) {
				return head, nil
			}
			return head, scanErr
		}
		if !tailOK && delivered < upper {
			return head, fmt.Errorf("%w: torn frame at lsn %d before acknowledged head %d in %s",
				ErrCorrupt, delivered+1, head, seg.path)
		}
		if delivered >= upper {
			return head, nil
		}
	}
	if delivered < upper {
		return head, fmt.Errorf("%w: log ends at lsn %d before acknowledged head %d", ErrCorrupt, delivered, head)
	}
	return head, nil
}

// TruncateFrom discards every record with LSN ≥ lsn — the suffix
// truncation a replicated consensus log needs for conflict resolution:
// a follower whose un-acknowledged tail disagrees with the elected
// leader's log discards the conflicting suffix before accepting the
// leader's records. After it returns, the next Append receives exactly
// lsn. Truncating at or beyond the current head is a no-op.
//
// The truncation barrier does not apply: it guards the committed
// prefix against reclamation from below, while TruncateFrom is a
// deliberate rewrite of the (by protocol, never-committed) suffix —
// the caller owns the proof that every discarded record was
// unacknowledged.
func (l *Log) TruncateFrom(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if lsn == 0 {
		return fmt.Errorf("wal: cannot truncate from lsn 0")
	}
	if lsn >= l.nextLSN {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active, l.bw = nil, nil
	// Drop whole segments past the cut, last to first, so a crash
	// mid-surgery leaves a contiguous (if still-too-long) log.
	keep := -1 // index of the segment holding lsn-1, -1 when none survives
	for i, seg := range l.segs {
		if seg.firstLSN <= lsn-1 {
			keep = i
		}
	}
	for i := len(l.segs) - 1; i > keep; i-- {
		if err := os.Remove(l.segs[i].path); err != nil {
			return err
		}
		l.segs = l.segs[:i]
	}
	l.nextLSN = lsn
	if keep < 0 {
		// Nothing retained below the cut (or the prefix was already
		// reclaimed past it): restart the log at lsn.
		return l.startSegment(lsn)
	}
	seg := l.segs[keep]
	if off, err := segmentPrefixLen(seg, lsn); err != nil {
		return err
	} else if err := os.Truncate(seg.path, off); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", seg.path, err)
	}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.bw = bufio.NewWriter(f)
	l.activeBytes = st.Size()
	return nil
}
