package wal

import (
	"fmt"
	"testing"
)

// fillLog appends n records ("rec-1".."rec-n") and returns the log.
func fillLog(t *testing.T, dir string, n int, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func wantRecords(t *testing.T, dir string, first, last uint64) {
	t.Helper()
	recs := collect(t, dir)
	wantN := int(last - first + 1)
	if last < first {
		wantN = 0
	}
	if len(recs) != wantN {
		t.Fatalf("replayed %d records, want %d (lsn %d..%d)", len(recs), wantN, first, last)
	}
	for i, r := range recs {
		lsn := first + uint64(i)
		if r.LSN != lsn || string(r.Data) != fmt.Sprintf("rec-%d", lsn) {
			t.Fatalf("record %d = {lsn %d, %q}, want {lsn %d, %q}", i, r.LSN, r.Data, lsn, fmt.Sprintf("rec-%d", lsn))
		}
	}
}

func TestTruncateFromMidSegment(t *testing.T) {
	dir := t.TempDir()
	l := fillLog(t, dir, 10, Options{})
	if err := l.TruncateFrom(6); err != nil {
		t.Fatalf("TruncateFrom: %v", err)
	}
	if got := l.NextLSN(); got != 6 {
		t.Fatalf("NextLSN after truncate = %d, want 6", got)
	}
	// The freed LSNs must be reusable and the file replayable.
	for i := 6; i <= 8; i++ {
		lsn, err := l.Append(1, []byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append after truncate: lsn = %d, want %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, dir, 1, 8)
}

func TestTruncateFromSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation: each record ~ its own segment.
	l := fillLog(t, dir, 9, Options{SegmentBytes: 32})
	if l.Segments() < 3 {
		t.Fatalf("want ≥3 segments, got %d", l.Segments())
	}
	// Truncate exactly at a later segment's first LSN.
	if err := l.TruncateFrom(4); err != nil {
		t.Fatalf("TruncateFrom: %v", err)
	}
	if got := l.NextLSN(); got != 4 {
		t.Fatalf("NextLSN = %d, want 4", got)
	}
	if _, err := l.Append(1, []byte("rec-4")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, dir, 1, 4)
}

func TestTruncateFromWholeLog(t *testing.T) {
	dir := t.TempDir()
	l := fillLog(t, dir, 5, Options{})
	if err := l.TruncateFrom(1); err != nil {
		t.Fatalf("TruncateFrom: %v", err)
	}
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("NextLSN = %d, want 1", got)
	}
	if _, err := l.Append(1, []byte("rec-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, dir, 1, 1)
}

func TestTruncateFromBeyondHeadIsNoop(t *testing.T) {
	dir := t.TempDir()
	l := fillLog(t, dir, 3, Options{})
	for _, lsn := range []uint64{4, 100} {
		if err := l.TruncateFrom(lsn); err != nil {
			t.Fatalf("TruncateFrom(%d): %v", lsn, err)
		}
	}
	if got := l.NextLSN(); got != 4 {
		t.Fatalf("NextLSN = %d, want 4", got)
	}
	if err := l.TruncateFrom(0); err == nil {
		t.Fatal("TruncateFrom(0) should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, dir, 1, 3)
}

func TestTruncateFromSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l := fillLog(t, dir, 10, Options{SegmentBytes: 64})
	if err := l.TruncateFrom(7); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("reopen after truncate: %v", err)
	}
	if got := l2.NextLSN(); got != 7 {
		t.Fatalf("NextLSN after reopen = %d, want 7", got)
	}
	for i := 7; i <= 12; i++ {
		if _, err := l2.Append(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, dir, 1, 12)
}

func TestReadThroughBounds(t *testing.T) {
	dir := t.TempDir()
	l := fillLog(t, dir, 10, Options{SegmentBytes: 64})
	defer l.Close()

	cases := []struct {
		from, through uint64
		wantFirst     uint64
		wantN         int
	}{
		{1, 10, 1, 10},
		{3, 7, 3, 5},
		{5, 5, 5, 1},
		{8, 100, 8, 3}, // through clamps to head
		{11, 20, 0, 0}, // beyond head: nothing
		{6, 2, 0, 0},   // empty range
	}
	for _, tc := range cases {
		var got []uint64
		head, err := l.ReadThrough(tc.from, tc.through, func(r Record) error {
			got = append(got, r.LSN)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadThrough(%d,%d): %v", tc.from, tc.through, err)
		}
		if head != 10 {
			t.Fatalf("ReadThrough(%d,%d) head = %d, want 10", tc.from, tc.through, head)
		}
		if len(got) != tc.wantN {
			t.Fatalf("ReadThrough(%d,%d) delivered %d records, want %d", tc.from, tc.through, len(got), tc.wantN)
		}
		for i, lsn := range got {
			if lsn != tc.wantFirst+uint64(i) {
				t.Fatalf("ReadThrough(%d,%d) record %d has lsn %d, want %d", tc.from, tc.through, i, lsn, tc.wantFirst+uint64(i))
			}
		}
	}
}
