package wal

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAppends: parallel appenders must produce a dense,
// gap-free LSN sequence and a fully replayable log.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncManual, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	lsns := make(chan uint64, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append(Type(id+1), []byte(fmt.Sprintf("w%d-%d", id, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				lsns <- lsn
			}
		}(w)
	}
	wg.Wait()
	close(lsns)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]bool)
	for lsn := range lsns {
		if seen[lsn] {
			t.Fatalf("duplicate lsn %d", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("%d unique lsns, want %d", len(seen), workers*perWorker)
	}
	for lsn := uint64(1); lsn <= uint64(workers*perWorker); lsn++ {
		if !seen[lsn] {
			t.Fatalf("gap at lsn %d", lsn)
		}
	}

	count := 0
	next, err := Replay(dir, func(r Record) error {
		count++
		if r.LSN != uint64(count) {
			return fmt.Errorf("replay order broken at %d (lsn %d)", count, r.LSN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != workers*perWorker || next != uint64(count+1) {
		t.Fatalf("replayed %d records, next %d", count, next)
	}
}

// TestConcurrentAppendAndTruncate: truncation of checkpointed prefixes
// must be safe alongside live appends.
func TestConcurrentAppendAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncManual, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.Append(1, []byte("payload-payload-payload")); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			lsn := l.NextLSN()
			if lsn > 20 {
				if err := l.TruncateThrough(lsn - 20); err != nil {
					t.Errorf("truncate: %v", err)
					return
				}
			}
		}
		close(stop)
	}()
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever survives must replay cleanly and contiguously.
	var prev uint64
	if _, err := Replay(dir, func(r Record) error {
		if prev != 0 && r.LSN != prev+1 {
			return fmt.Errorf("gap after %d", prev)
		}
		prev = r.LSN
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
