// Package graph implements the weighted undirected social graph that
// underlies the social search engine. The graph is stored in compressed
// sparse row (CSR) form for cache-friendly traversal: all adjacency lists
// live in two flat arrays indexed by a per-vertex offset table.
//
// Vertices are dense user identifiers in [0, NumUsers). Edge weights are
// friendship strengths in (0, 1]; a weight of 1 is a maximally strong tie.
// The package provides the traversals the proximity engine and the
// generators need: BFS, connected components, weighted (max-product)
// Dijkstra, degree statistics and clustering coefficients.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// UserID is a dense vertex identifier in [0, NumUsers).
type UserID = int32

// Edge is a single undirected edge with its friendship weight.
type Edge struct {
	U, V   UserID
	Weight float64
}

// Builder accumulates edges before freezing them into an immutable Graph.
// Duplicate edges are merged keeping the maximum weight; self-loops are
// rejected at Build time.
type Builder struct {
	numUsers int
	edges    []Edge
}

// NewBuilder returns a Builder for a graph over numUsers vertices.
func NewBuilder(numUsers int) *Builder {
	return &Builder{numUsers: numUsers}
}

// AddEdge records an undirected edge (u, v) with the given weight.
// It may be called multiple times for the same pair; the maximum weight
// wins. Ordering of u and v does not matter.
func (b *Builder) AddEdge(u, v UserID, weight float64) {
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: weight})
}

// NumEdgesAdded reports how many AddEdge calls were recorded (before
// dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build validates and freezes the accumulated edges into a Graph.
func (b *Builder) Build() (*Graph, error) {
	n := b.numUsers
	if n < 0 {
		return nil, errors.New("graph: negative user count")
	}
	for _, e := range b.edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop on user %d", e.U)
		}
		if e.Weight <= 0 || e.Weight > 1 {
			return nil, fmt.Errorf("graph: edge (%d,%d) weight %g outside (0,1]", e.U, e.V, e.Weight)
		}
	}
	// Normalize to (min,max) key and dedup keeping max weight.
	type key struct{ a, b UserID }
	best := make(map[key]float64, len(b.edges))
	for _, e := range b.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if w, ok := best[k]; !ok || e.Weight > w {
			best[k] = e.Weight
		}
	}
	uniq := make([]Edge, 0, len(best))
	for k, w := range best {
		uniq = append(uniq, Edge{U: k.a, V: k.b, Weight: w})
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].U != uniq[j].U {
			return uniq[i].U < uniq[j].U
		}
		return uniq[i].V < uniq[j].V
	})

	deg := make([]int32, n+1)
	for _, e := range uniq {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	m2 := int(deg[n]) // 2 * |E|
	adj := make([]UserID, m2)
	wts := make([]float64, m2)
	cursor := make([]int32, n)
	copy(cursor, deg[:n])
	insert := func(from, to UserID, w float64) {
		p := cursor[from]
		adj[p] = to
		wts[p] = w
		cursor[from]++
	}
	for _, e := range uniq {
		insert(e.U, e.V, e.Weight)
		insert(e.V, e.U, e.Weight)
	}
	g := &Graph{
		numUsers: n,
		offsets:  deg,
		adj:      adj,
		weights:  wts,
	}
	// Sort each adjacency slice by neighbour id for deterministic
	// iteration and binary-searchable HasEdge.
	for u := 0; u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		sort.Sort(nbrSorter{adj: adj, wts: wts, lo: int(lo), n: int(hi - lo)})
	}
	return g, nil
}

type nbrSorter struct {
	adj []UserID
	wts []float64
	lo  int
	n   int
}

func (s nbrSorter) Len() int { return s.n }
func (s nbrSorter) Less(i, j int) bool {
	return s.adj[s.lo+i] < s.adj[s.lo+j]
}
func (s nbrSorter) Swap(i, j int) {
	a, b := s.lo+i, s.lo+j
	s.adj[a], s.adj[b] = s.adj[b], s.adj[a]
	s.wts[a], s.wts[b] = s.wts[b], s.wts[a]
}

// FromSortedEdges builds a Graph directly from edges that are already
// canonical: each undirected edge reported exactly once with U < V,
// strictly sorted by (U, V). This is the flat load path for on-disk
// formats (internal/index, internal/pagestore) whose writers emit
// canonical edges — it constructs the CSR arrays in two linear passes
// with no deduplication map and no re-sort. Per-vertex adjacency comes
// out sorted by construction: row u receives its smaller neighbours
// (from edges ending at u, which precede u's own run in the input
// order) before its larger ones (from u's own run), both ascending.
// Violations of canonical form are rejected, so a corrupt or hand-built
// input falls back to the Builder path cleanly.
func FromSortedEdges(numUsers int, edges []Edge) (*Graph, error) {
	n := numUsers
	if n < 0 {
		return nil, errors.New("graph: negative user count")
	}
	for i, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U >= e.V {
			return nil, fmt.Errorf("graph: edge (%d,%d) not canonical (want U < V)", e.U, e.V)
		}
		if e.Weight <= 0 || e.Weight > 1 {
			return nil, fmt.Errorf("graph: edge (%d,%d) weight %g outside (0,1]", e.U, e.V, e.Weight)
		}
		if i > 0 {
			p := edges[i-1]
			if e.U < p.U || (e.U == p.U && e.V <= p.V) {
				return nil, fmt.Errorf("graph: edges not strictly sorted at (%d,%d)", e.U, e.V)
			}
		}
	}
	offsets := make([]int32, n+1)
	for _, e := range edges {
		offsets[e.U+1]++
		offsets[e.V+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	m2 := int(offsets[n])
	adj := make([]UserID, m2)
	wts := make([]float64, m2)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		p := cursor[e.U]
		adj[p], wts[p] = e.V, e.Weight
		cursor[e.U]++
		p = cursor[e.V]
		adj[p], wts[p] = e.U, e.Weight
		cursor[e.V]++
	}
	return &Graph{numUsers: n, offsets: offsets, adj: adj, weights: wts}, nil
}

// Graph is an immutable weighted undirected graph in CSR form.
// The zero value is an empty graph.
type Graph struct {
	numUsers int
	offsets  []int32 // len numUsers+1
	adj      []UserID
	weights  []float64
}

// CSR exposes the flat adjacency arrays: offsets (len NumUsers+1) into
// adj/weights. The slices alias internal storage and must not be
// modified; they are the zero-copy export for paged/on-disk layouts.
func (g *Graph) CSR() (offsets []int32, adj []UserID, weights []float64) {
	return g.offsets, g.adj, g.weights
}

// NumUsers reports the number of vertices.
func (g *Graph) NumUsers() int { return g.numUsers }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree reports the number of neighbours of u.
func (g *Graph) Degree(u UserID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the sorted neighbour ids of u and their weights.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) Neighbors(u UserID) ([]UserID, []float64) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	return g.adj[lo:hi], g.weights[lo:hi]
}

// EdgeWeight reports the weight of edge (u, v), or 0 and false when the
// edge does not exist.
func (g *Graph) EdgeWeight(u, v UserID) (float64, bool) {
	nbrs, wts := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return wts[i], true
	}
	return 0, false
}

// HasEdge reports whether edge (u, v) exists.
func (g *Graph) HasEdge(u, v UserID) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// Edges returns all undirected edges, each reported once with U < V,
// sorted by (U, V). The slice is freshly allocated.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.numUsers; u++ {
		nbrs, wts := g.Neighbors(UserID(u))
		for i, v := range nbrs {
			if UserID(u) < v {
				out = append(out, Edge{U: UserID(u), V: v, Weight: wts[i]})
			}
		}
	}
	return out
}

// BFS performs a breadth-first traversal from src, invoking visit for
// every reachable vertex with its hop distance (src has distance 0).
// Traversal stops early if visit returns false.
func (g *Graph) BFS(src UserID, visit func(u UserID, depth int) bool) {
	if g.numUsers == 0 {
		return
	}
	seen := make([]bool, g.numUsers)
	queue := []UserID{src}
	seen[src] = true
	depth := 0
	for len(queue) > 0 {
		var next []UserID
		for _, u := range queue {
			if !visit(u, depth) {
				return
			}
			nbrs, _ := g.Neighbors(u)
			for _, v := range nbrs {
				if !seen[v] {
					seen[v] = true
					next = append(next, v)
				}
			}
		}
		queue = next
		depth++
	}
}

// HopDistances returns the hop distance from src to every vertex, with -1
// for unreachable vertices.
func (g *Graph) HopDistances(src UserID) []int {
	dist := make([]int, g.numUsers)
	for i := range dist {
		dist[i] = -1
	}
	g.BFS(src, func(u UserID, depth int) bool {
		dist[u] = depth
		return true
	})
	return dist
}

// ConnectedComponents labels every vertex with a component id in
// [0, numComponents) and returns the labels plus the component count.
// Component ids are assigned in order of the smallest vertex they contain.
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.numUsers)
	for i := range labels {
		labels[i] = -1
	}
	for u := 0; u < g.numUsers; u++ {
		if labels[u] != -1 {
			continue
		}
		g.BFS(UserID(u), func(v UserID, _ int) bool {
			labels[v] = count
			return true
		})
		count++
	}
	return labels, count
}

// LargestComponent returns the vertices of the largest connected
// component, sorted ascending.
func (g *Graph) LargestComponent() []UserID {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]UserID, 0, sizes[best])
	for u, l := range labels {
		if l == best {
			out = append(out, UserID(u))
		}
	}
	return out
}
