package graph

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// path builds the path graph 0-1-2-...-(n-1) with uniform weight w.
func path(t testing.TB, n int, w float64) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(UserID(i), UserID(i+1), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("path(%d): %v", n, err)
	}
	return g
}

func triangle(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.25)
	b.AddEdge(0, 2, 0.75)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildEmpty(t *testing.T) {
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d users, %d edges", g.NumUsers(), g.NumEdges())
	}
}

func TestBuildNoEdges(t *testing.T) {
	g, err := NewBuilder(5).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got %d users, %d edges", g.NumUsers(), g.NumEdges())
	}
	for u := UserID(0); u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatalf("user %d degree = %d, want 0", u, g.Degree(u))
		}
	}
}

func TestBuildRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 0.5)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	for _, e := range []Edge{{U: -1, V: 0, Weight: 0.5}, {U: 0, V: 3, Weight: 0.5}} {
		b := NewBuilder(3)
		b.AddEdge(e.U, e.V, e.Weight)
		if _, err := b.Build(); err == nil {
			t.Fatalf("edge %+v accepted", e)
		}
	}
}

func TestBuildRejectsBadWeight(t *testing.T) {
	for _, w := range []float64{0, -0.5, 1.5, math.NaN()} {
		b := NewBuilder(2)
		b.AddEdge(0, 1, w)
		if _, err := b.Build(); err == nil && !math.IsNaN(w) {
			t.Fatalf("weight %g accepted", w)
		}
	}
}

func TestDuplicateEdgesKeepMaxWeight(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0.3)
	b.AddEdge(1, 0, 0.8) // reversed orientation, higher weight
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 0.8 {
		t.Fatalf("EdgeWeight(0,1) = %g,%v want 0.8,true", w, ok)
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	g := triangle(t)
	for u := UserID(0); u < 3; u++ {
		nbrs, wts := g.Neighbors(u)
		if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
			t.Fatalf("neighbours of %d not sorted: %v", u, nbrs)
		}
		for i, v := range nbrs {
			w2, ok := g.EdgeWeight(v, u)
			if !ok || w2 != wts[i] {
				t.Fatalf("asymmetric edge (%d,%d)", u, v)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := triangle(t)
	edges := g.Edges()
	want := []Edge{{0, 1, 0.5}, {0, 2, 0.75}, {1, 2, 0.25}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
}

func TestBFSDepths(t *testing.T) {
	g := path(t, 5, 0.5)
	dist := g.HopDistances(0)
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("HopDistances = %v, want %v", dist, want)
	}
}

func TestBFSEarlyStop(t *testing.T) {
	g := path(t, 10, 0.5)
	visited := 0
	g.BFS(0, func(u UserID, depth int) bool {
		visited++
		return depth < 2
	})
	if visited != 3 { // depths 0,1,2 visited; visit at depth 2 stops traversal
		t.Fatalf("visited %d vertices, want 3", visited)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(2, 3, 0.5)
	b.AddEdge(3, 4, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[3] != labels[4] {
		t.Fatalf("bad labels: %v", labels)
	}
	if labels[5] == labels[0] || labels[5] == labels[2] {
		t.Fatalf("isolated vertex shares a component: %v", labels)
	}
	lc := g.LargestComponent()
	if !reflect.DeepEqual(lc, []UserID{2, 3, 4}) {
		t.Fatalf("LargestComponent = %v", lc)
	}
}

func TestMaxProductDistancesPath(t *testing.T) {
	g := path(t, 4, 0.5)
	prox := g.MaxProductDistances(0, 1.0, 1.0)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if math.Abs(prox[i]-want[i]) > 1e-12 {
			t.Fatalf("prox[%d] = %g, want %g", i, prox[i], want[i])
		}
	}
}

func TestMaxProductPrefersStrongIndirectPath(t *testing.T) {
	// 0-2 direct weight 0.3; 0-1-2 via weights 0.9*0.9 = 0.81 > 0.3.
	b := NewBuilder(3)
	b.AddEdge(0, 2, 0.3)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prox := g.MaxProductDistances(0, 1.0, 1.0)
	if math.Abs(prox[2]-0.81) > 1e-12 {
		t.Fatalf("prox[2] = %g, want 0.81 (indirect path)", prox[2])
	}
}

func TestMaxProductAlphaDamping(t *testing.T) {
	g := path(t, 3, 1.0)
	prox := g.MaxProductDistances(0, 0.5, 1.0)
	// hop damping: 1, 0.5, 0.25 despite unit edge weights
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(prox[i]-want[i]) > 1e-12 {
			t.Fatalf("prox[%d] = %g, want %g", i, prox[i], want[i])
		}
	}
}

func TestMaxProductUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prox := g.MaxProductDistances(0, 1.0, 1.0)
	if prox[2] != 0 {
		t.Fatalf("unreachable vertex has proximity %g", prox[2])
	}
}

func TestLocalClustering(t *testing.T) {
	g := triangle(t)
	for u := UserID(0); u < 3; u++ {
		if c := g.LocalClustering(u); c != 1 {
			t.Fatalf("triangle clustering(%d) = %g, want 1", u, c)
		}
	}
	p := path(t, 3, 0.5)
	if c := p.LocalClustering(1); c != 0 {
		t.Fatalf("path clustering(1) = %g, want 0", c)
	}
	if c := p.LocalClustering(0); c != 0 {
		t.Fatalf("degree-1 clustering = %g, want 0", c)
	}
}

func TestComputeStats(t *testing.T) {
	g := triangle(t)
	s := g.ComputeStats(0)
	if s.NumUsers != 3 || s.NumEdges != 3 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.Components != 1 || s.LargestComponent != 3 {
		t.Fatalf("stats components wrong: %+v", s)
	}
	if s.MinDegree != 2 || s.MaxDegree != 2 || s.AvgDegree != 2 {
		t.Fatalf("stats degrees wrong: %+v", s)
	}
	if s.ClusteringSample != 1 {
		t.Fatalf("clustering = %g, want 1", s.ClusteringSample)
	}
}

func TestDegreePercentileUser(t *testing.T) {
	// star: vertex 0 has degree 4, leaves have degree 1.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, UserID(i), 0.5)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if u := g.DegreePercentileUser(100); u != 0 {
		t.Fatalf("p100 user = %d, want hub 0", u)
	}
	if u := g.DegreePercentileUser(0); u == 0 {
		t.Fatalf("p0 user = hub, want a leaf")
	}
	// Out-of-range percentiles clamp rather than panic.
	g.DegreePercentileUser(-5)
	g.DegreePercentileUser(500)
}

// randomGraph builds a connected-ish random graph for property tests.
func randomGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		// spanning tree for connectivity
		j := rng.Intn(i)
		b.AddEdge(UserID(i), UserID(j), 0.1+0.9*rng.Float64())
	}
	extra := n / 2
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(UserID(u), UserID(v), 0.1+0.9*rng.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyProximityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n)
		src := UserID(rng.Intn(n))
		prox := g.MaxProductDistances(src, 1.0, 1.0)
		if prox[src] != 1.0 {
			return false
		}
		for u, p := range prox {
			if p < 0 || p > 1 {
				return false
			}
			if UserID(u) != src && p >= 1.0+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyProximityTriangleInequality(t *testing.T) {
	// For every edge (u,v): prox[v] >= prox[u]*w(u,v), i.e. the relaxation
	// is a fixed point.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n)
		src := UserID(rng.Intn(n))
		prox := g.MaxProductDistances(src, 1.0, 1.0)
		for _, e := range g.Edges() {
			if prox[e.V] < prox[e.U]*e.Weight-1e-12 {
				return false
			}
			if prox[e.U] < prox[e.V]*e.Weight-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		b := NewBuilder(n)
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(UserID(u), UserID(v), 0.5)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		labels, count := g.ConnectedComponents()
		// every label in range, every edge within one component
		for _, l := range labels {
			if l < 0 || l >= count {
				return false
			}
		}
		for _, e := range g.Edges() {
			if labels[e.U] != labels[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
