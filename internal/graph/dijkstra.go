package graph

// MaxProductDistances computes, for every vertex v, the best (maximum)
// path product from src: max over paths p:src⇝v of Π_{e∈p} w(e), damped
// by alpha per hop (alpha ∈ (0,1]; alpha = 1 disables damping). src
// itself gets selfWeight. Unreachable vertices get 0.
//
// Because all edge weights and alpha lie in (0,1], the product is
// monotonically non-increasing along any path, so a max-heap Dijkstra
// settles vertices in non-increasing proximity order — the property the
// incremental proximity iterator (package proximity) and the SocialMerge
// threshold argument rely on. This batch form is used by the exact
// baseline and by tests that validate the iterator.
//
// The implementation uses a hand-rolled binary heap of value entries:
// the standard library's container/heap boxes every push into an
// interface value, and the resulting per-relaxation allocation dominates
// the run time on large graphs.
func (g *Graph) MaxProductDistances(src UserID, alpha, selfWeight float64) []float64 {
	n := g.NumUsers()
	prox := make([]float64, n)
	if n == 0 {
		return prox
	}
	settled := make([]bool, n)
	pq := newProxHeap(64)
	prox[src] = selfWeight
	pq.push(proxItem{u: src, p: selfWeight})
	for pq.len() > 0 {
		it := pq.pop()
		if settled[it.u] {
			continue
		}
		settled[it.u] = true
		nbrs, wts := g.Neighbors(it.u)
		for i, v := range nbrs {
			if settled[v] {
				continue
			}
			cand := it.p * wts[i] * alpha
			if cand > prox[v] {
				prox[v] = cand
				pq.push(proxItem{u: v, p: cand})
			}
		}
	}
	return prox
}

type proxItem struct {
	u UserID
	p float64
}

// proxHeap is an allocation-light max-heap on proximity with
// deterministic id tie-breaking.
type proxHeap struct {
	items []proxItem
}

func newProxHeap(capacity int) *proxHeap {
	return &proxHeap{items: make([]proxItem, 0, capacity)}
}

func (h *proxHeap) len() int { return len(h.items) }

func (h *proxHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.p != b.p {
		return a.p > b.p
	}
	return a.u < b.u
}

func (h *proxHeap) push(it proxItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *proxHeap) peek() proxItem { return h.items[0] }

func (h *proxHeap) pop() proxItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.siftDown(0)
	return top
}

func (h *proxHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}
