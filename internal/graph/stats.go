package graph

import (
	"math"
	"sort"
)

// Stats summarizes the structure of a graph; it backs Table 1 of the
// experiment suite.
type Stats struct {
	NumUsers          int
	NumEdges          int
	MinDegree         int
	MaxDegree         int
	AvgDegree         float64
	MedianDegree      int
	Components        int
	LargestComponent  int
	ClusteringSample  float64 // sampled average local clustering coefficient
	EffectiveDiameter float64 // sampled 90th-percentile hop distance
}

// ComputeStats derives structural statistics. sample bounds the number of
// vertices used for the clustering-coefficient and diameter estimates
// (they are cubic/quadratic in the worst case); sample <= 0 means a
// default of 256.
func (g *Graph) ComputeStats(sample int) Stats {
	if sample <= 0 {
		sample = 256
	}
	n := g.NumUsers()
	s := Stats{NumUsers: n, NumEdges: g.NumEdges()}
	if n == 0 {
		return s
	}
	degrees := make([]int, n)
	minD, maxD, sum := math.MaxInt, 0, 0
	for u := 0; u < n; u++ {
		d := g.Degree(UserID(u))
		degrees[u] = d
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		sum += d
	}
	sort.Ints(degrees)
	s.MinDegree = minD
	s.MaxDegree = maxD
	s.AvgDegree = float64(sum) / float64(n)
	s.MedianDegree = degrees[n/2]

	labels, count := g.ConnectedComponents()
	s.Components = count
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	for _, sz := range sizes {
		if sz > s.LargestComponent {
			s.LargestComponent = sz
		}
	}

	// Deterministic sampling: stride over the vertex range.
	stride := n / sample
	if stride == 0 {
		stride = 1
	}
	var ccSum float64
	var ccCount int
	var hops []int
	for u := 0; u < n; u += stride {
		ccSum += g.LocalClustering(UserID(u))
		ccCount++
		if ccCount <= 16 { // diameter sampling is the expensive part
			for _, d := range g.HopDistances(UserID(u)) {
				if d > 0 {
					hops = append(hops, d)
				}
			}
		}
	}
	if ccCount > 0 {
		s.ClusteringSample = ccSum / float64(ccCount)
	}
	if len(hops) > 0 {
		sort.Ints(hops)
		s.EffectiveDiameter = float64(hops[(len(hops)*9)/10])
	}
	return s
}

// LocalClustering returns the local clustering coefficient of u: the
// fraction of pairs of u's neighbours that are themselves connected.
// Vertices with degree < 2 have coefficient 0.
func (g *Graph) LocalClustering(u UserID) float64 {
	nbrs, _ := g.Neighbors(u)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// DegreePercentileUser returns a vertex whose degree sits at the given
// percentile (0..100) of the degree distribution. Useful for selecting
// seekers of controlled connectivity in experiments.
func (g *Graph) DegreePercentileUser(pct int) UserID {
	n := g.NumUsers()
	if n == 0 {
		return 0
	}
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	type du struct {
		d int
		u UserID
	}
	all := make([]du, n)
	for u := 0; u < n; u++ {
		all[u] = du{g.Degree(UserID(u)), UserID(u)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].u < all[j].u
	})
	idx := (pct * (n - 1)) / 100
	return all[idx].u
}
