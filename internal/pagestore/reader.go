package pagestore

import "io"

// Reader is a sequential io.Reader over a pool-backed source. It keeps
// the current page pinned between Read calls so a scan touches each
// page exactly once, and releases it when the scan crosses a page
// boundary or Close is called.
type Reader struct {
	pool *Pool
	pos  int64
	cur  *Page // pinned page containing pos, nil between pages
}

// NewReader returns a sequential reader positioned at offset 0.
func NewReader(p *Pool) *Reader {
	return &Reader{pool: p}
}

// SeekTo repositions the reader at byte offset off, releasing any
// pinned page.
func (r *Reader) SeekTo(off int64) {
	r.dropCurrent()
	r.pos = off
}

// Read implements io.Reader.
func (r *Reader) Read(b []byte) (int, error) {
	if r.pos >= r.pool.Size() {
		return 0, io.EOF
	}
	if len(b) == 0 {
		return 0, nil
	}
	ps := int64(r.pool.PageSize())
	no := r.pos / ps
	if r.cur == nil || r.cur.f == nil || r.cur.f.no != no {
		r.dropCurrent()
		pg, err := r.pool.Get(no)
		if err != nil {
			return 0, err
		}
		r.cur = pg
	}
	start := int(r.pos - no*ps)
	n := copy(b, r.cur.Data[start:])
	r.pos += int64(n)
	if start+n >= len(r.cur.Data) {
		r.dropCurrent()
	}
	return n, nil
}

// Offset returns the current read position.
func (r *Reader) Offset() int64 { return r.pos }

// Close releases any pinned page. The reader may be reused after a
// Seek.
func (r *Reader) Close() error {
	r.dropCurrent()
	return nil
}

func (r *Reader) dropCurrent() {
	if r.cur != nil {
		r.cur.Release()
		r.cur = nil
	}
}
