package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// pattern fills a deterministic byte sequence so any page's content is
// checkable from its offset alone.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + i/255)
	}
	return b
}

func newTestPool(t *testing.T, size int, opts Options) (*Pool, []byte) {
	t.Helper()
	data := pattern(size)
	p, err := New(bytes.NewReader(data), int64(size), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, data
}

func TestGetReturnsCorrectPages(t *testing.T) {
	p, data := newTestPool(t, 10_000, Options{PageSize: 256, Capacity: 4})
	for _, no := range []int64{0, 5, 38, 39} {
		pg, err := p.Get(no)
		if err != nil {
			t.Fatalf("Get(%d): %v", no, err)
		}
		start := int(no) * 256
		end := start + 256
		if end > len(data) {
			end = len(data)
		}
		if !bytes.Equal(pg.Data, data[start:end]) {
			t.Fatalf("page %d content mismatch (len %d)", no, len(pg.Data))
		}
		pg.Release()
	}
	// 10000/256 = 39.0625 → final page is 16 bytes.
	pg, err := p.Get(39)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Data) != 10_000-39*256 {
		t.Fatalf("final page length %d", len(pg.Data))
	}
	pg.Release()

	if _, err := p.Get(40); err == nil {
		t.Fatal("Get past EOF succeeded")
	}
	if _, err := p.Get(-1); err == nil {
		t.Fatal("Get(-1) succeeded")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p, _ := newTestPool(t, 4096, Options{PageSize: 256, Capacity: 3})
	get := func(no int64) {
		t.Helper()
		pg, err := p.Get(no)
		if err != nil {
			t.Fatal(err)
		}
		pg.Release()
	}
	get(0)
	get(1)
	get(2) // resident: 0,1,2 (LRU order 0 oldest)
	get(0) // touch 0 → 1 is now oldest
	get(3) // evicts 1
	st := p.Stats()
	if st.Evictions != 1 || st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	get(0) // hit
	get(2) // hit
	get(1) // miss: was evicted
	st = p.Stats()
	if st.Hits != 3 || st.Misses != 5 {
		t.Fatalf("LRU did not keep recently used pages: %+v", st)
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p, data := newTestPool(t, 4096, Options{PageSize: 256, Capacity: 2})
	pg0, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	pg1, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	// Pool full of pins: a third page must fail, not evict.
	if _, err := p.Get(2); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Get with all frames pinned: %v, want ErrExhausted", err)
	}
	// Pinned data stays valid.
	if !bytes.Equal(pg0.Data, data[:256]) {
		t.Fatal("pinned page 0 corrupted")
	}
	pg0.Release()
	if pg2, err := p.Get(2); err != nil {
		t.Fatalf("Get after release: %v", err)
	} else {
		pg2.Release()
	}
	pg1.Release()
	// Double release is a no-op, not a panic.
	pg1.Release()
}

func TestPinCountingSharedPage(t *testing.T) {
	p, _ := newTestPool(t, 1024, Options{PageSize: 256, Capacity: 1})
	a, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get(0) // second pin on the same frame
	if err != nil {
		t.Fatal(err)
	}
	a.Release()
	// Still pinned by b: capacity 1 means Get(1) must fail.
	if _, err := p.Get(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("frame freed while still pinned: %v", err)
	}
	b.Release()
	if pg, err := p.Get(1); err != nil {
		t.Fatalf("Get after final release: %v", err)
	} else {
		pg.Release()
	}
}

func TestReadAtMatchesSource(t *testing.T) {
	p, data := newTestPool(t, 10_000, Options{PageSize: 512, Capacity: 3})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		off := rng.Intn(len(data))
		n := 1 + rng.Intn(2000)
		buf := make([]byte, n)
		got, err := p.ReadAt(buf, int64(off))
		want := n
		if off+n > len(data) {
			want = len(data) - off
			if err != io.EOF {
				t.Fatalf("ReadAt(%d,%d) past end: err = %v, want EOF", off, n, err)
			}
		} else if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", off, n, err)
		}
		if got != want || !bytes.Equal(buf[:got], data[off:off+got]) {
			t.Fatalf("ReadAt(%d,%d) returned %d bytes, want %d (or content mismatch)", off, n, got, want)
		}
	}
}

func TestSequentialReaderScansWholeFile(t *testing.T) {
	for _, size := range []int{0, 1, 255, 256, 257, 10_000} {
		data := pattern(size)
		p, err := New(bytes.NewReader(data), int64(size), Options{PageSize: 256, Capacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		r := NewReader(p)
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: scan mismatch (%d bytes)", size, len(got))
		}
		r.Close()
		// A pure sequential scan loads each page exactly once.
		st := p.Stats()
		wantPages := int64((size + 255) / 256)
		if st.Misses != wantPages {
			t.Fatalf("size %d: %d misses, want %d", size, st.Misses, wantPages)
		}
	}
}

func TestSequentialReaderSeek(t *testing.T) {
	p, data := newTestPool(t, 4096, Options{PageSize: 256, Capacity: 2})
	r := NewReader(p)
	defer r.Close()
	r.SeekTo(1000)
	buf := make([]byte, 500)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[1000:1500]) {
		t.Fatal("read after Seek mismatch")
	}
	if r.Offset() != 1500 {
		t.Fatalf("Offset = %d, want 1500", r.Offset())
	}
}

func TestConcurrentAccess(t *testing.T) {
	const size = 1 << 16
	p, data := newTestPool(t, size, Options{PageSize: 512, Capacity: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				no := int64(rng.Intn(size / 512))
				pg, err := p.Get(no)
				if err != nil {
					if errors.Is(err, ErrExhausted) {
						continue // legal under heavy pinning
					}
					errs <- err
					return
				}
				off := int(no) * 512
				if !bytes.Equal(pg.Data, data[off:off+512]) {
					errs <- fmt.Errorf("worker %d: page %d corrupt", seed, no)
					pg.Release()
					return
				}
				pg.Release()
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Resident > st.Capacity {
		t.Fatalf("resident %d exceeds capacity %d", st.Resident, st.Capacity)
	}
}

type failingReaderAt struct{ fail int64 }

func (f *failingReaderAt) ReadAt(b []byte, off int64) (int, error) {
	if off >= f.fail {
		return 0, errors.New("injected read failure")
	}
	for i := range b {
		b[i] = byte(off) + byte(i)
	}
	return len(b), nil
}

func TestLoadFailureDoesNotPoisonPool(t *testing.T) {
	p, err := New(&failingReaderAt{fail: 512}, 1024, Options{PageSize: 512, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); err == nil {
		t.Fatal("Get of failing page succeeded")
	}
	// The failed frame must not linger: a healthy page still works and
	// the failed page keeps failing cleanly.
	pg, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	pg.Release()
	if _, err := p.Get(1); err == nil {
		t.Fatal("second Get of failing page succeeded")
	}
	st := p.Stats()
	if st.Resident != 1 {
		t.Fatalf("resident = %d after failed load, want 1", st.Resident)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRatio(); got != 0.75 {
		t.Fatalf("hit ratio = %g, want 0.75", got)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(bytes.NewReader(nil), 0, Options{PageSize: 8}); err == nil {
		t.Fatal("tiny page size accepted")
	}
	if _, err := New(bytes.NewReader(nil), 0, Options{Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := New(nil, 0, Options{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := New(bytes.NewReader(nil), -1, Options{}); err == nil {
		t.Fatal("negative size accepted")
	}
}

// TestQuickReadAtEquivalence: for random sizes, page sizes, capacities
// and offsets, pool reads must byte-for-byte equal direct slicing.
func TestQuickReadAtEquivalence(t *testing.T) {
	prop := func(sizeSeed, pageSeed, capSeed uint16, offs []uint16) bool {
		size := int(sizeSeed)%5000 + 1
		data := pattern(size)
		opts := Options{PageSize: 16 + int(pageSeed)%500, Capacity: 1 + int(capSeed)%8}
		p, err := New(bytes.NewReader(data), int64(size), opts)
		if err != nil {
			return false
		}
		for _, o := range offs {
			off := int(o) % size
			n := 1 + int(o)%97
			buf := make([]byte, n)
			got, err := p.ReadAt(buf, int64(off))
			if off+n <= size {
				if err != nil || got != n {
					return false
				}
			} else if err != io.EOF || got != size-off {
				return false
			}
			if !bytes.Equal(buf[:got], data[off:off+got]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
