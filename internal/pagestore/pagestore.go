// Package pagestore provides a fixed-size-page buffer pool over a
// random-access source: the storage substrate that lets the on-disk
// index be consumed with bounded memory instead of io.ReadAll. Pages
// are cached with LRU replacement, pinned while in use, and loaded at
// most once concurrently; hit/miss/eviction counters feed the Ext-5
// experiment (hit ratio vs pool capacity under sequential and Zipf
// access patterns).
package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultPageSize is the page size used when Options.PageSize is 0.
const DefaultPageSize = 4096

// ErrExhausted is returned by Get when every frame in the pool is
// pinned and nothing can be evicted.
var ErrExhausted = errors.New("pagestore: all frames pinned, pool exhausted")

// Options configures a Pool.
type Options struct {
	// PageSize in bytes (default DefaultPageSize).
	PageSize int
	// Capacity is the maximum number of resident pages (default 64).
	Capacity int
}

func (o *Options) normalize() error {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.Capacity == 0 {
		o.Capacity = 64
	}
	if o.PageSize < 16 {
		return fmt.Errorf("pagestore: page size %d too small", o.PageSize)
	}
	if o.Capacity < 1 {
		return fmt.Errorf("pagestore: capacity %d < 1", o.Capacity)
	}
	return nil
}

// Stats are cumulative pool counters.
type Stats struct {
	// Hits counts Gets served from a resident page.
	Hits int64
	// Misses counts Gets that had to load from the source.
	Misses int64
	// Evictions counts pages dropped to make room.
	Evictions int64
	// Resident is the current number of cached pages.
	Resident int
	// Capacity echoes the configured maximum.
	Capacity int
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any access.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is a buffer pool over an io.ReaderAt of known size. It is safe
// for concurrent use.
type Pool struct {
	src      io.ReaderAt
	size     int64
	pageSize int
	capacity int

	mu     sync.Mutex
	frames map[int64]*frame
	lru    *list.List // front = most recent; holds only unpinned frames
	stats  Stats
}

type frame struct {
	no   int64
	data []byte
	pins int
	// loading is non-nil while the first Get reads the page; waiters
	// block on it. err records a failed load for those waiters.
	loading chan struct{}
	err     error
	// elem is the frame's LRU position when unpinned (nil while pinned).
	elem *list.Element
}

// New builds a pool over src, which must serve ReadAt for [0, size).
func New(src io.ReaderAt, size int64, opts Options) (*Pool, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("pagestore: nil source")
	}
	if size < 0 {
		return nil, fmt.Errorf("pagestore: negative size %d", size)
	}
	return &Pool{
		src:      src,
		size:     size,
		pageSize: opts.PageSize,
		capacity: opts.Capacity,
		frames:   make(map[int64]*frame),
		lru:      list.New(),
	}, nil
}

// FilePool opens path and builds a pool over it. Close the returned
// closer when done.
func FilePool(path string, opts Options) (*Pool, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	p, err := New(f, st.Size(), opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return p, f, nil
}

// Size returns the source size in bytes.
func (p *Pool) Size() int64 { return p.size }

// PageSize returns the configured page size.
func (p *Pool) PageSize() int { return p.pageSize }

// NumPages returns the number of pages covering the source.
func (p *Pool) NumPages() int64 {
	if p.size == 0 {
		return 0
	}
	return (p.size + int64(p.pageSize) - 1) / int64(p.pageSize)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Resident = len(p.frames)
	s.Capacity = p.capacity
	return s
}

// Page is a pinned page handle. Data must not be modified and is valid
// until Release.
type Page struct {
	pool *Pool
	f    *frame
	// Data holds the page contents; the final page may be short.
	Data []byte
}

// Release unpins the page, making its frame evictable again. Release
// is idempotent.
func (pg *Page) Release() {
	if pg.f == nil {
		return
	}
	pg.pool.release(pg.f)
	pg.f = nil
	pg.Data = nil
}

// Get pins page no (0-based) and returns its handle. Concurrent Gets
// of the same absent page perform a single source read.
func (p *Pool) Get(no int64) (*Page, error) {
	if no < 0 || no >= p.NumPages() {
		return nil, fmt.Errorf("pagestore: page %d outside [0,%d)", no, p.NumPages())
	}
	p.mu.Lock()
	for {
		f, ok := p.frames[no]
		if !ok {
			break
		}
		if f.loading != nil {
			// Another goroutine is reading this page; wait and re-check
			// (the load may have failed and removed the frame).
			ch := f.loading
			p.mu.Unlock()
			<-ch
			p.mu.Lock()
			if f.err != nil {
				p.mu.Unlock()
				return nil, f.err
			}
			continue
		}
		p.pin(f)
		p.stats.Hits++
		p.mu.Unlock()
		return &Page{pool: p, f: f, Data: f.data}, nil
	}

	// Miss: make room, install a loading placeholder, read unlocked.
	if len(p.frames) >= p.capacity {
		if !p.evictOne() {
			p.mu.Unlock()
			return nil, ErrExhausted
		}
	}
	f := &frame{no: no, pins: 1, loading: make(chan struct{})}
	p.frames[no] = f
	p.stats.Misses++
	p.mu.Unlock()

	data, err := p.readPage(no)

	p.mu.Lock()
	if err != nil {
		f.err = err
		delete(p.frames, no)
		close(f.loading)
		p.mu.Unlock()
		return nil, err
	}
	f.data = data
	close(f.loading)
	f.loading = nil
	p.mu.Unlock()
	return &Page{pool: p, f: f, Data: data}, nil
}

// readPage reads page no from the source (no lock held).
func (p *Pool) readPage(no int64) ([]byte, error) {
	off := no * int64(p.pageSize)
	n := int64(p.pageSize)
	if off+n > p.size {
		n = p.size - off
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(p.src, off, n), buf); err != nil {
		return nil, fmt.Errorf("pagestore: reading page %d: %w", no, err)
	}
	return buf, nil
}

// pin marks a resident frame in use, removing it from the LRU list.
// Caller holds p.mu.
func (p *Pool) pin(f *frame) {
	f.pins++
	if f.elem != nil {
		p.lru.Remove(f.elem)
		f.elem = nil
	}
}

// release unpins a frame, parking it at the MRU end when free.
func (p *Pool) release(f *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic("pagestore: release of unpinned page")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushFront(f)
	}
}

// evictOne drops the least-recently-used unpinned frame. Caller holds
// p.mu. Reports whether a frame was evicted.
func (p *Pool) evictOne() bool {
	back := p.lru.Back()
	if back == nil {
		return false
	}
	f := back.Value.(*frame)
	p.lru.Remove(back)
	delete(p.frames, f.no)
	p.stats.Evictions++
	return true
}

// ReadAt implements io.ReaderAt through the pool, so random-access
// consumers share the cache with sequential ones.
func (p *Pool) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pagestore: negative offset")
	}
	total := 0
	for len(b) > 0 {
		if off >= p.size {
			return total, io.EOF
		}
		no := off / int64(p.pageSize)
		pg, err := p.Get(no)
		if err != nil {
			return total, err
		}
		start := int(off - no*int64(p.pageSize))
		n := copy(b, pg.Data[start:])
		pg.Release()
		if n == 0 {
			return total, io.ErrUnexpectedEOF
		}
		b = b[n:]
		off += int64(n)
		total += n
	}
	return total, nil
}
