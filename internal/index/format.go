// Package index defines the binary on-disk format for a social tagging
// dataset (social graph + tagging store) and implements its writer and
// reader. The format is what cmd/datagen emits and what the query tools
// load, and its build cost and size are reported in Table 2.
//
// Layout (all multi-byte integers are unsigned varints unless noted):
//
//	magic   "FRND"            4 bytes
//	version u8                currently 1
//	--- graph section ---
//	numUsers, numEdges
//	numEdges × { uDelta, v, weightBits (8 bytes little-endian) }
//	    edges sorted by (u, v); uDelta is the difference from the
//	    previous edge's u
//	--- tagging section ---
//	numUsers, numItems, numTags, numTriples
//	numTriples × { userDelta, tagDelta, item, count }
//	    triples in canonical (user, tag, item) order; userDelta resets
//	    tagDelta, which resets nothing (items stored raw — they are not
//	    monotone within a (user, tag) run after frequency sorting)
//	--- trailer ---
//	crc32 (IEEE, 4 bytes little-endian) of everything before it
package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/tagstore"
)

var magic = [4]byte{'F', 'R', 'N', 'D'}

// Version is the current format version.
const Version = 1

// ErrCorrupt is returned when the trailer checksum does not match the
// payload.
var ErrCorrupt = errors.New("index: checksum mismatch")

// Write serializes the dataset to w.
func Write(w io.Writer, g *graph.Graph, store *tagstore.Store) error {
	if g.NumUsers() != store.NumUsers() {
		return fmt.Errorf("index: graph has %d users, store has %d", g.NumUsers(), store.NumUsers())
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}

	// graph section
	edges := g.Edges()
	putUvarint(bw, uint64(g.NumUsers()))
	putUvarint(bw, uint64(len(edges)))
	prevU := int32(0)
	for _, e := range edges {
		putUvarint(bw, uint64(e.U-prevU))
		prevU = e.U
		putUvarint(bw, uint64(e.V))
		var wb [8]byte
		binary.LittleEndian.PutUint64(wb[:], math.Float64bits(e.Weight))
		if _, err := bw.Write(wb[:]); err != nil {
			return err
		}
	}

	// tagging section
	trs := store.Triples()
	putUvarint(bw, uint64(store.NumUsers()))
	putUvarint(bw, uint64(store.NumItems()))
	putUvarint(bw, uint64(store.NumTags()))
	putUvarint(bw, uint64(len(trs)))
	prevUser, prevTag := int32(0), int32(0)
	for _, tr := range trs {
		du := tr.User - prevUser
		if du != 0 {
			prevTag = 0
		}
		putUvarint(bw, uint64(du))
		putUvarint(bw, uint64(tr.Tag-prevTag))
		prevUser, prevTag = tr.User, tr.Tag
		putUvarint(bw, uint64(tr.Item))
		putUvarint(bw, uint64(tr.Count))
	}

	if err := bw.Flush(); err != nil {
		return err
	}
	// trailer: checksum of everything written so far, straight to w
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], crc.Sum32())
	_, err := w.Write(tb[:])
	return err
}

// Read deserializes a dataset written by Write, verifying the checksum.
// The stream is buffered in memory so the trailer can be checked before
// the (possibly partially corrupt) payload is trusted. For
// bounded-memory loading through a buffer pool, see ReadPaged.
func Read(r io.Reader) (*graph.Graph, *tagstore.Store, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	if len(raw) < len(magic)+1+4 {
		return nil, nil, fmt.Errorf("index: truncated file (%d bytes)", len(raw))
	}
	payload, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, nil, ErrCorrupt
	}
	return decodePayload(bufio.NewReader(bytesReader(payload)))
}

// decodePayload parses the format body (everything between the start of
// the file and the trailer). The reader must be limited to exactly the
// payload bytes; trailing garbage is rejected.
func decodePayload(br *bufio.Reader) (*graph.Graph, *tagstore.Store, error) {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if m != magic {
		return nil, nil, fmt.Errorf("index: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	if ver != Version {
		return nil, nil, fmt.Errorf("index: unsupported version %d", ver)
	}

	numUsers, err := getUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	numEdges, err := getUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	// The writer emits canonical edges (each once, U < V, sorted by
	// (U, V)), so the graph is assembled straight into its flat CSR
	// arrays — no dedup map, no re-sort. FromSortedEdges validates
	// canonical form, so a corrupt stream still fails cleanly.
	edges := make([]graph.Edge, 0, int(numEdges))
	prevU := int32(0)
	for i := uint64(0); i < numEdges; i++ {
		du, err := getUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		v, err := getUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		var wb [8]byte
		if _, err := io.ReadFull(br, wb[:]); err != nil {
			return nil, nil, err
		}
		u := prevU + int32(du)
		prevU = u
		edges = append(edges, graph.Edge{
			U: u, V: int32(v),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(wb[:])),
		})
	}

	su, err := getUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if su != numUsers {
		return nil, nil, fmt.Errorf("index: tagging section user count %d != graph %d", su, numUsers)
	}
	numItems, err := getUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	numTags, err := getUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	numTriples, err := getUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	tb := tagstore.NewBuilder(int(su), int(numItems), int(numTags))
	prevUser, prevTag := int32(0), int32(0)
	for i := uint64(0); i < numTriples; i++ {
		du, err := getUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		dt, err := getUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		item, err := getUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		count, err := getUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		if du != 0 {
			prevTag = 0
		}
		user := prevUser + int32(du)
		tag := prevTag + int32(dt)
		prevUser, prevTag = user, tag
		tb.AddCount(user, int32(item), tag, int32(count))
	}

	// Reject trailing garbage between the parsed payload and trailer.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, fmt.Errorf("index: %d trailing bytes after payload", br.Buffered()+1)
	}

	g, err := graph.FromSortedEdges(int(numUsers), edges)
	if err != nil {
		return nil, nil, fmt.Errorf("index: rebuilding graph: %w", err)
	}
	store, err := tb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("index: rebuilding store: %w", err)
	}
	return g, store, nil
}

// WriteFile serializes to a file path.
func WriteFile(path string, g *graph.Graph, store *tagstore.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g, store); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a dataset from a file path.
func ReadFile(path string) (*graph.Graph, *tagstore.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}

func putUvarint(w *bufio.Writer, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.Write(buf[:n]) // bufio.Writer errors surface at Flush
}

func getUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// bytesReader adapts a byte slice to io.Reader without importing bytes
// solely for that (kept tiny and allocation-free).
type sliceReader struct {
	b   []byte
	pos int
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{b: b} }

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.pos:])
	s.pos += n
	return n, nil
}
