package index

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/pagestore"
)

func writeTestIndex(t *testing.T) (string, *gen.Dataset) {
	t.Helper()
	ds, err := gen.Generate(gen.DeliciousParams().Scale(0.05), 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.frnd")
	if err := WriteFile(path, ds.Graph, ds.Store); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

func TestReadPagedMatchesRead(t *testing.T) {
	path, _ := writeTestIndex(t)
	gWant, sWant, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []pagestore.Options{
		{},                               // defaults
		{PageSize: 64, Capacity: 2},      // pathologically small
		{PageSize: 1 << 20, Capacity: 1}, // whole file in one page
	} {
		g, s, stats, err := ReadPagedFile(path, opts)
		if err != nil {
			t.Fatalf("ReadPagedFile(%+v): %v", opts, err)
		}
		if g.NumUsers() != gWant.NumUsers() || !reflect.DeepEqual(g.Edges(), gWant.Edges()) {
			t.Fatalf("opts %+v: graph mismatch", opts)
		}
		if !reflect.DeepEqual(s.Triples(), sWant.Triples()) {
			t.Fatalf("opts %+v: store mismatch", opts)
		}
		if stats.Misses == 0 {
			t.Fatalf("opts %+v: no page loads recorded", opts)
		}
		// Sequential decode + one trailer access: each page loads once,
		// except the trailer page which the scan already touched (the
		// tiny-capacity config may have evicted it).
		if stats.Hits+stats.Misses > stats.Misses*2 {
			t.Fatalf("opts %+v: unexpected access pattern %+v", opts, stats)
		}
	}
}

func TestReadPagedDetectsCorruption(t *testing.T) {
	path, _ := writeTestIndex(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{10, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x01
		p := filepath.Join(t.TempDir(), "corrupt.frnd")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := ReadPagedFile(p, pagestore.Options{PageSize: 128, Capacity: 4})
		if err == nil {
			t.Fatalf("flip at %d: paged read accepted corrupt file", pos)
		}
	}
}

func TestReadPagedTruncated(t *testing.T) {
	path, _ := writeTestIndex(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 3, 8, len(raw) / 2, len(raw) - 4} {
		p := filepath.Join(t.TempDir(), "trunc.frnd")
		if err := os.WriteFile(p, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ReadPagedFile(p, pagestore.Options{}); err == nil {
			t.Fatalf("keep %d bytes: paged read accepted truncated file", keep)
		}
	}
}

func TestReadPagedMissingFile(t *testing.T) {
	_, _, _, err := ReadPagedFile(filepath.Join(t.TempDir(), "absent.frnd"), pagestore.Options{})
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want fs not-exist", err)
	}
}
