package index

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

func sampleData(t testing.TB, seed int64) (*graph.Graph, *tagstore.Store) {
	t.Helper()
	p := gen.CorpusParams{
		Name: "idx",
		Graph: gen.GraphParams{
			Kind: gen.BarabasiAlbert, NumUsers: 80, M: 3,
			MinWeight: 0.2, MaxWeight: 1,
		},
		NumItems:       150,
		NumTags:        25,
		TriplesPerUser: 12,
		TagZipfS:       1.2,
		ItemZipfS:      1.2,
		Homophily:      0.3,
	}
	ds, err := gen.Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph, ds.Store
}

func TestRoundTrip(t *testing.T) {
	g, s := sampleData(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	g2, s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("graph edges differ after round trip")
	}
	if !reflect.DeepEqual(s.Triples(), s2.Triples()) {
		t.Fatal("triples differ after round trip")
	}
	if s2.NumItems() != s.NumItems() || s2.NumTags() != s.NumTags() {
		t.Fatal("universe sizes differ after round trip")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	g, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := tagstore.NewBuilder(0, 0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	g2, s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUsers() != 0 || s2.NumTriples() != 0 {
		t.Fatal("empty round trip wrong")
	}
}

func TestWriteRejectsMismatchedUniverses(t *testing.T) {
	g, _ := graph.NewBuilder(2).Build()
	s, _ := tagstore.NewBuilder(3, 1, 1).Build()
	if err := Write(&bytes.Buffer{}, g, s); err == nil {
		t.Fatal("mismatched universes accepted")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	g, s := sampleData(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit somewhere in the payload (past the magic).
	for _, pos := range []int{6, len(raw) / 2, len(raw) - 6} {
		cp := append([]byte(nil), raw...)
		cp[pos] ^= 0x40
		_, _, err := Read(bytes.NewReader(cp))
		if err == nil {
			t.Fatalf("corruption at byte %d undetected", pos)
		}
	}
	// Specifically: a payload flip must yield ErrCorrupt.
	cp := append([]byte(nil), raw...)
	cp[len(raw)/2] ^= 0x01
	_, _, err := Read(bytes.NewReader(cp))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload corruption error = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsBadMagicAndVersion(t *testing.T) {
	g, s := sampleData(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	fixTrailer(bad)
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), raw...)
	bad[4] = 99
	fixTrailer(bad)
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	g, s := sampleData(t, 4)
	var buf bytes.Buffer
	if err := Write(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, 8, len(raw) / 2, len(raw) - 1} {
		if _, _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g, s := sampleData(t, 5)
	path := filepath.Join(t.TempDir(), "ds.frnd")
	if err := WriteFile(path, g, s); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty index file")
	}
	g2, s2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || s2.NumTriples() != s.NumTriples() {
		t.Fatal("file round trip lost data")
	}
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "missing.frnd")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// fixTrailer recomputes the checksum so structural validation (not CRC)
// is exercised.
func fixTrailer(raw []byte) {
	payload := raw[:len(raw)-4]
	sum := crc32ChecksumIEEE(payload)
	raw[len(raw)-4] = byte(sum)
	raw[len(raw)-3] = byte(sum >> 8)
	raw[len(raw)-2] = byte(sum >> 16)
	raw[len(raw)-1] = byte(sum >> 24)
}

func crc32ChecksumIEEE(b []byte) uint32 {
	// small indirection to keep the test self-contained
	return crcIEEE(b)
}

func TestPropertyRoundTripRandomCorpora(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.CorpusParams{
			Name: "prop",
			Graph: gen.GraphParams{
				Kind: gen.BarabasiAlbert, NumUsers: 10 + rng.Intn(60), M: 1 + rng.Intn(3),
				MinWeight: 0.2, MaxWeight: 1,
			},
			NumItems:       10 + rng.Intn(100),
			NumTags:        2 + rng.Intn(20),
			TriplesPerUser: rng.Intn(20),
			TagZipfS:       1.1,
			ItemZipfS:      1.1,
			Homophily:      rng.Float64(),
		}
		ds, err := gen.Generate(p, seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, ds.Graph, ds.Store); err != nil {
			return false
		}
		g2, s2, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(ds.Graph.Edges(), g2.Edges()) &&
			reflect.DeepEqual(ds.Store.Triples(), s2.Triples())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
