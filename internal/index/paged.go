package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/graph"
	"repro/internal/pagestore"
	"repro/internal/tagstore"
)

// ReadPaged deserializes a dataset through a pagestore pool, touching
// the file one page at a time instead of buffering it whole. The
// checksum is computed while streaming and verified against the
// trailer before the decoded structures are returned; on mismatch the
// partially built structures are discarded and ErrCorrupt is returned.
//
// The pool's Stats after the call describe the IO behaviour of the
// load (the Ext-5 experiment drives this with varying pool capacities).
func ReadPaged(pool *pagestore.Pool) (*graph.Graph, *tagstore.Store, error) {
	size := pool.Size()
	if size < int64(len(magic))+1+4 {
		return nil, nil, fmt.Errorf("index: truncated file (%d bytes)", size)
	}
	payloadLen := size - 4

	r := pagestore.NewReader(pool)
	defer r.Close()
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(io.TeeReader(io.LimitReader(r, payloadLen), crc), 1<<16)

	g, store, err := decodePayload(br)
	if err != nil {
		return nil, nil, err
	}

	var trailer [4]byte
	if _, err := pool.ReadAt(trailer[:], payloadLen); err != nil {
		return nil, nil, fmt.Errorf("index: reading trailer: %w", err)
	}
	if crc.Sum32() != binary.LittleEndian.Uint32(trailer[:]) {
		return nil, nil, ErrCorrupt
	}
	return g, store, nil
}

// ReadPagedFile loads a dataset from path with a bounded-memory pool of
// the given page size and capacity (zero values for defaults). It
// returns the pool statistics of the load alongside the dataset.
func ReadPagedFile(path string, opts pagestore.Options) (*graph.Graph, *tagstore.Store, pagestore.Stats, error) {
	pool, closer, err := pagestore.FilePool(path, opts)
	if err != nil {
		return nil, nil, pagestore.Stats{}, err
	}
	defer closer.Close()
	g, store, err := ReadPaged(pool)
	if err != nil {
		return nil, nil, pool.Stats(), err
	}
	return g, store, pool.Stats(), nil
}
