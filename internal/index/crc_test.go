package index

import "hash/crc32"

// crcIEEE is a test helper alias so format_test stays readable.
func crcIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
