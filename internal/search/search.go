// Package search defines the versioned request/response surface of the
// social tagging search engine: one canonical Request type carrying
// every per-query knob (result count, social/global blend, execution
// mode, explainability), one Response type carrying results plus an
// optional execution explanation, and the Searcher interface the
// serving layers (internal/social, internal/durable and — at the
// id level — internal/exec) implement.
//
// The package is deliberately dependency-free: it is the contract
// between callers (HTTP handlers, CLIs, embedding applications) and
// engines, so validation and normalization policy live here and
// nowhere else. Every implementation calls Request.Normalize exactly
// once, which makes k defaulting, the MaxK cap, tag normalization and
// knob range checks identical across all entry points.
package search

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Result count policy, applied by Normalize.
const (
	// DefaultK is substituted when a request leaves K zero.
	DefaultK = 10
	// MaxK caps the result count of a single request; larger values are
	// clamped, never rejected, so a greedy client degrades gracefully.
	MaxK = 1000
)

// ErrInvalid tags every validation failure produced by Normalize, so
// transport layers can map the whole class (and nothing else) to a
// client error: errors.Is(err, search.ErrInvalid).
var ErrInvalid = errors.New("invalid search request")

// ErrUnavailable tags failures of the serving substrate rather than of
// the request: a network replica that could not be reached, answered
// with a server error, or was ejected by health checking. Routers
// (internal/fleet) treat the class as failover-eligible — the same
// request may succeed on another replica — and HTTP transports map it
// to 503. Wrap with fmt.Errorf("%w: ...", search.ErrUnavailable, ...)
// so errors.Is(err, search.ErrUnavailable) holds.
var ErrUnavailable = errors.New("search backend unavailable")

// ErrOverloaded tags requests a replica refused because its admission
// controller shed them: the replica is healthy but at capacity, and the
// same request will likely succeed on the SAME replica after a short
// backoff. The class is deliberately distinct from ErrUnavailable —
// routers must NOT fail a shed request over to ring successors (that
// would re-aim the overload at the next replica), and HTTP transports
// map it to 429 with a Retry-After hint. Construct with Overloadedf so
// errors.Is(err, search.ErrOverloaded) holds and the retry hint rides
// along.
var ErrOverloaded = errors.New("search backend overloaded")

// OverloadError is the concrete shed error: it carries the replica's
// suggested retry backoff. Extract with errors.As; errors.Is against
// ErrOverloaded matches the class.
type OverloadError struct {
	// RetryAfter is the replica's backoff suggestion (how long until
	// admission capacity is expected to free up). Zero means "retry
	// whenever"; transports round it up to whole seconds for the
	// Retry-After header.
	RetryAfter time.Duration
	msg        string
}

// Overloadedf builds an OverloadError with the given retry hint.
func Overloadedf(retryAfter time.Duration, format string, args ...interface{}) error {
	return &OverloadError{RetryAfter: retryAfter, msg: fmt.Sprintf(format, args...)}
}

func (e *OverloadError) Error() string {
	if e.msg == "" {
		return ErrOverloaded.Error()
	}
	return ErrOverloaded.Error() + ": " + e.msg
}

// Is makes errors.Is(err, ErrOverloaded) true for the whole class.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

func invalidf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// WrapInvalid marks err as a client-side request error — making
// errors.Is(err, ErrInvalid) true — without changing its message.
// Implementations use it for request-content failures Normalize cannot
// see (unknown names, malformed ids, an unsatisfiable AlgHint) so
// transports keep a clean client/server error split while legacy error
// texts stay byte-identical.
func WrapInvalid(err error) error {
	if err == nil {
		return nil
	}
	return invalidErr{err}
}

type invalidErr struct{ error }

func (e invalidErr) Is(target error) bool { return target == ErrInvalid }
func (e invalidErr) Unwrap() error        { return e.error }

// Mode selects how a request is executed.
type Mode int

const (
	// ModeAuto lets the cost-based planner (internal/planner) choose the
	// cheapest exact algorithm for the query; the seeker-horizon cache
	// accelerates it when the plan is horizon-compatible. The zero value,
	// so requests that say nothing get planned execution.
	ModeAuto Mode = iota
	// ModeExact runs the refine path: exact scores, certified answers
	// (equivalent to the ExactSocial oracle when horizons are unbounded).
	ModeExact
	// ModeApprox runs the cheapest serving path: certified lower-bound
	// scores with early termination, and truncated horizons when the
	// service bounds them.
	ModeApprox
)

// String returns the wire spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeExact:
		return "exact"
	case ModeApprox:
		return "approx"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses the wire spelling of a mode; the empty string is
// ModeAuto.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return ModeAuto, nil
	case "exact":
		return ModeExact, nil
	case "approx", "approximate":
		return ModeApprox, nil
	default:
		return ModeAuto, invalidf("unknown mode %q (want auto, exact or approx)", s)
	}
}

// AlgHints lists the algorithm names accepted in Request.AlgHint, in
// the spelling internal/planner uses.
var AlgHints = []string{"SocialMerge", "ContextMerge", "SocialTA", "GlobalTopK"}

// Request is one top-k search request. The zero value of every optional
// field means "use the engine default", so Request{Seeker: s, Tags: t}
// is a complete query.
type Request struct {
	// Seeker is the querying user (required).
	Seeker string
	// Tags are the query tags (required). Normalize splits comma-joined
	// entries, trims whitespace and drops blanks, so both
	// []string{"pizza,italian"} and []string{"pizza", "italian"} work.
	Tags []string
	// K is the requested result count: 0 means DefaultK, negative is
	// invalid, values above MaxK are clamped.
	K int
	// Beta, when non-nil, overrides the engine's social/global blend for
	// this query only (must lie in [0,1]).
	Beta *float64
	// Mode selects planned (auto), exact-score, or approximate execution.
	Mode Mode
	// AlgHint forces a specific engine algorithm in ModeAuto (one of
	// AlgHints); empty lets the planner decide. Ignored by the other
	// modes.
	AlgHint string
	// MinScore drops results scoring strictly below it (0 keeps all).
	MinScore float64
	// Offset skips the first Offset results (simple paging). Capped at
	// MaxK like K itself — implementations fetch K+Offset results, so
	// the cap is what bounds per-request work.
	Offset int
	// NoCache bypasses the seeker-horizon cache for this query: the
	// horizon is materialized fresh and never installed. Useful for
	// one-shot seekers a caller knows will not repeat, and as the
	// ground-truth path when auditing cache consistency.
	NoCache bool
	// MaxCacheAgeMS tightens the serving cache's TTL for this query: a
	// cached horizon older than this many milliseconds is treated as a
	// miss (and re-materialized fresh). 0 defers to the server's cache
	// policy; it cannot loosen that policy. Negative is invalid.
	MaxCacheAgeMS int64
	// Explain asks the engine to report how it answered the query.
	Explain bool
}

// Normalize validates the request and canonicalizes it in place: tags
// are split/trimmed, K defaulting and capping applied, AlgHint spelled
// canonically. It is the single place query admission policy lives;
// every Searcher implementation calls it before executing. All errors
// wrap ErrInvalid.
func (r *Request) Normalize() error {
	if strings.TrimSpace(r.Seeker) == "" {
		return invalidf("missing seeker")
	}
	r.Tags = NormalizeTags(r.Tags)
	if len(r.Tags) == 0 {
		return invalidf("missing tags")
	}
	switch {
	case r.K < 0:
		return invalidf("negative k %d", r.K)
	case r.K == 0:
		r.K = DefaultK
	case r.K > MaxK:
		r.K = MaxK
	}
	if r.Beta != nil && (*r.Beta < 0 || *r.Beta > 1) {
		return invalidf("beta %g outside [0,1]", *r.Beta)
	}
	if r.Mode < ModeAuto || r.Mode > ModeApprox {
		return invalidf("unknown mode %d", int(r.Mode))
	}
	if r.AlgHint != "" {
		canonical := ""
		for _, h := range AlgHints {
			if strings.EqualFold(h, strings.TrimSpace(r.AlgHint)) {
				canonical = h
				break
			}
		}
		if canonical == "" {
			return invalidf("unknown alg hint %q (want one of %s)", r.AlgHint, strings.Join(AlgHints, ", "))
		}
		r.AlgHint = canonical
	}
	if r.MinScore < 0 {
		return invalidf("negative min score %g", r.MinScore)
	}
	if r.Offset < 0 {
		return invalidf("negative offset %d", r.Offset)
	}
	if r.Offset > MaxK {
		return invalidf("offset %d above cap %d", r.Offset, MaxK)
	}
	if r.MaxCacheAgeMS < 0 {
		return invalidf("negative max cache age %d ms", r.MaxCacheAgeMS)
	}
	return nil
}

// NormalizeTags is the tag normalization every entry point shares:
// comma-joined entries are split, whitespace trimmed, blanks dropped.
// Already-clean input (no commas, no padding, no blanks — the common
// case for programmatic callers) is returned unchanged, so the serving
// hot path pays no allocation here.
func NormalizeTags(chunks []string) []string {
	clean := true
	for _, c := range chunks {
		if c == "" || strings.ContainsRune(c, ',') || strings.TrimSpace(c) != c {
			clean = false
			break
		}
	}
	if clean {
		return chunks
	}
	var tags []string
	for _, chunk := range chunks {
		for _, t := range strings.Split(chunk, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tags = append(tags, t)
			}
		}
	}
	return tags
}

// Window applies the post-execution result policy — MinScore filtering,
// Offset paging, truncation to K — to a score-descending result list.
// Implementations fetch K+Offset results from the engine and shape them
// through this one helper so paging semantics cannot drift apart.
func (r *Request) Window(results []Result) []Result {
	// Results are score-descending, so MinScore cuts a suffix.
	cut := len(results)
	for cut > 0 && results[cut-1].Score < r.MinScore {
		cut--
	}
	results = results[:cut]
	if r.Offset >= len(results) {
		return nil
	}
	results = results[r.Offset:]
	if len(results) > r.K {
		results = results[:r.K]
	}
	return results
}

// Result is one answered item.
type Result struct {
	Item  string  `json:"item"`
	Score float64 `json:"score"`
}

// Explain reports how a query was answered. All counters describe the
// single execution that produced the response.
type Explain struct {
	// Algorithm is the engine algorithm that ran (planner spelling:
	// SocialMerge, ContextMerge, SocialTA, GlobalTopK, ExactSocial).
	Algorithm string `json:"algorithm"`
	// Mode is the execution mode after normalization.
	Mode string `json:"mode"`
	// Planned reports whether the cost-based planner chose the
	// algorithm (false when the mode or an AlgHint dictated it).
	Planned bool `json:"planned"`
	// Estimates are the planner's predicted access counts per considered
	// algorithm (present only for planned executions).
	Estimates map[string]float64 `json:"estimates,omitempty"`
	// Beta is the social/global blend the query ran under.
	Beta float64 `json:"beta"`
	// Exact reports whether the answer set is certified exact.
	Exact bool `json:"exact"`
	// ScoreBound is the certified lower bound on the score of the last
	// returned result — the certification threshold τ the engine stopped
	// at (0 when nothing matched).
	ScoreBound float64 `json:"score_bound"`
	// HorizonUsers is the size of the materialized seeker horizon the
	// query consumed (0 when execution did not go through a horizon).
	HorizonUsers int `json:"horizon_users"`
	// HorizonResidual is the proximity bound on users beyond the
	// materialized horizon (0 for a complete horizon).
	HorizonResidual float64 `json:"horizon_residual"`
	// CacheHit reports whether the seeker horizon came from the serving
	// cache; CacheGeneration is the cache generation the horizon is
	// stamped with (both zero when no horizon or no cache was involved).
	CacheHit        bool   `json:"cache_hit"`
	CacheGeneration uint64 `json:"cache_generation"`
	// CacheShard is the index of the cache shard that owns this seeker
	// (0 on unsharded or cacheless deployments).
	CacheShard int `json:"cache_shard"`
	// UsersSettled, SequentialAccesses and RandomAccesses are the
	// engine's hardware-independent cost counters for this execution.
	UsersSettled       int   `json:"users_settled"`
	SequentialAccesses int64 `json:"sequential_accesses"`
	RandomAccesses     int64 `json:"random_accesses"`
	// Degraded reports that overload brownout rewrote the request
	// (mode:auto forced to approx) before this execution.
	Degraded bool `json:"degraded,omitempty"`
}

// Response answers one Request.
type Response struct {
	// Results are the top items, score-descending, already shaped by the
	// request's MinScore/Offset/K window. Never nil on success.
	Results []Result `json:"results"`
	// Explain is present iff the request asked for it.
	Explain *Explain `json:"explain,omitempty"`
	// Degraded reports that overload brownout answered this query on a
	// cheaper path than requested (mode:auto forced to approx). The
	// answer is still honest: every returned score is exact and
	// ScoreBound certifies what may be missing.
	Degraded bool `json:"degraded,omitempty"`
	// ScoreBound is the certified lower bound on any result the degraded
	// execution could have missed (the engine's certification threshold
	// τ). Populated only on degraded responses, so clients get the
	// honesty certificate even when brownout shed the Explain work.
	ScoreBound float64 `json:"score_bound,omitempty"`
}

// BatchResult is the outcome of one request of a DoBatch call: Response
// on success, a non-nil Err otherwise (including ctx.Err() for requests
// a cancelled batch never started). A failed request never fails the
// batch.
type BatchResult struct {
	Response Response
	Err      error
}

// Searcher is the canonical query interface of the engine. Do answers
// one request; DoBatch answers many concurrently, returning outcomes in
// input order with per-request errors. Both honour ctx: cancellation
// aborts in-flight executions at the engine's next checkpoint and fails
// unstarted batch requests with ctx.Err().
type Searcher interface {
	Do(ctx context.Context, req Request) (Response, error)
	DoBatch(ctx context.Context, reqs []Request) []BatchResult
}
