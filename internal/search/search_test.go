package search

import (
	"errors"
	"reflect"
	"testing"
)

func TestNormalizeKPolicy(t *testing.T) {
	base := func() Request { return Request{Seeker: "alice", Tags: []string{"pizza"}} }

	r := base()
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.K != DefaultK {
		t.Fatalf("zero k normalized to %d, want DefaultK=%d", r.K, DefaultK)
	}

	r = base()
	r.K = -1
	if err := r.Normalize(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative k: err = %v, want ErrInvalid", err)
	}

	r = base()
	r.K = MaxK + 500
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.K != MaxK {
		t.Fatalf("oversized k clamped to %d, want %d", r.K, MaxK)
	}

	r = base()
	r.K = 7
	if err := r.Normalize(); err != nil || r.K != 7 {
		t.Fatalf("valid k mangled: k=%d err=%v", r.K, err)
	}
}

func TestNormalizeTagsAndSeeker(t *testing.T) {
	r := Request{Seeker: "alice", Tags: []string{" pizza, italian ", "", "sushi"}}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"pizza", "italian", "sushi"}; !reflect.DeepEqual(r.Tags, want) {
		t.Fatalf("tags = %v, want %v", r.Tags, want)
	}

	for _, bad := range []Request{
		{Seeker: "", Tags: []string{"pizza"}},
		{Seeker: "   ", Tags: []string{"pizza"}},
		{Seeker: "alice", Tags: nil},
		{Seeker: "alice", Tags: []string{" ", ","}},
	} {
		if err := bad.Normalize(); !errors.Is(err, ErrInvalid) {
			t.Errorf("Normalize(%+v) = %v, want ErrInvalid", bad, err)
		}
	}
}

func TestNormalizeKnobRanges(t *testing.T) {
	mk := func(mutate func(*Request)) Request {
		r := Request{Seeker: "alice", Tags: []string{"pizza"}}
		mutate(&r)
		return r
	}
	bad := []Request{
		mk(func(r *Request) { b := -0.1; r.Beta = &b }),
		mk(func(r *Request) { b := 1.1; r.Beta = &b }),
		mk(func(r *Request) { r.Mode = Mode(99) }),
		mk(func(r *Request) { r.AlgHint = "QuantumMerge" }),
		mk(func(r *Request) { r.MinScore = -1 }),
		mk(func(r *Request) { r.Offset = -1 }),
		// Offset shares K's cap: implementations fetch K+Offset results,
		// so an unbounded offset would subvert MaxK entirely.
		mk(func(r *Request) { r.Offset = MaxK + 1 }),
	}
	for i, r := range bad {
		if err := r.Normalize(); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}

	ok := mk(func(r *Request) {
		b := 0.5
		r.Beta = &b
		r.Mode = ModeApprox
		r.AlgHint = "socialmerge"
		r.MinScore = 0.25
		r.Offset = 3
	})
	if err := ok.Normalize(); err != nil {
		t.Fatal(err)
	}
	if ok.AlgHint != "SocialMerge" {
		t.Fatalf("alg hint canonicalized to %q", ok.AlgHint)
	}
}

func TestWrapInvalid(t *testing.T) {
	inner := errors.New(`social: unknown user "nobody"`)
	err := WrapInvalid(inner)
	if !errors.Is(err, ErrInvalid) {
		t.Fatal("wrapped error does not match ErrInvalid")
	}
	if err.Error() != inner.Error() {
		t.Fatalf("message changed: %q", err.Error())
	}
	if !errors.Is(err, inner) {
		t.Fatal("wrapped error lost its cause")
	}
	if WrapInvalid(nil) != nil {
		t.Fatal("WrapInvalid(nil) != nil")
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{"": ModeAuto, "auto": ModeAuto, "Exact": ModeExact, " approx ": ModeApprox}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("banana"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("ParseMode(banana) = %v, want ErrInvalid", err)
	}
}

func TestWindow(t *testing.T) {
	results := []Result{{"a", 5}, {"b", 4}, {"c", 3}, {"d", 2}, {"e", 1}}
	r := Request{K: 2, Offset: 1, MinScore: 2}
	got := r.Window(append([]Result(nil), results...))
	if want := []Result{{"b", 4}, {"c", 3}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("window = %v, want %v", got, want)
	}
	// Offset past the filtered list yields nothing.
	r = Request{K: 3, Offset: 10}
	if got := r.Window(append([]Result(nil), results...)); got != nil {
		t.Fatalf("offset past end = %v, want nil", got)
	}
	// MinScore filters the tail only.
	r = Request{K: 10, MinScore: 3.5}
	got = r.Window(append([]Result(nil), results...))
	if want := []Result{{"a", 5}, {"b", 4}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("min-score window = %v, want %v", got, want)
	}
}

func TestNormalizeCacheKnobs(t *testing.T) {
	r := Request{Seeker: "s", Tags: []string{"t"}, MaxCacheAgeMS: -5}
	if err := r.Normalize(); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative MaxCacheAgeMS: err = %v, want ErrInvalid", err)
	}
	ok := Request{Seeker: "s", Tags: []string{"t"}, NoCache: true, MaxCacheAgeMS: 1500}
	if err := ok.Normalize(); err != nil {
		t.Fatalf("valid cache knobs rejected: %v", err)
	}
}
