package vocab

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndLookup(t *testing.T) {
	d := New()
	a, err := d.Add("alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Add("bob")
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d", a, b)
	}
	// re-adding returns the same id
	a2, err := d.Add("alice")
	if err != nil || a2 != a {
		t.Fatalf("re-add = %d,%v", a2, err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if id, ok := d.ID("bob"); !ok || id != 1 {
		t.Fatalf("ID(bob) = %d,%v", id, ok)
	}
	if _, ok := d.ID("carol"); ok {
		t.Fatal("missing name found")
	}
	if n, ok := d.Name(0); !ok || n != "alice" {
		t.Fatalf("Name(0) = %q,%v", n, ok)
	}
	if _, ok := d.Name(5); ok {
		t.Fatal("out-of-range id found")
	}
	if _, ok := d.Name(-1); ok {
		t.Fatal("negative id found")
	}
}

func TestAddValidation(t *testing.T) {
	d := New()
	if _, err := d.Add(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := d.Add("two\nlines"); err == nil {
		t.Fatal("newline name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic")
		}
	}()
	d.MustAdd("")
}

func TestRoundTrip(t *testing.T) {
	d := New()
	for _, n := range []string{"alice", "bob", "carol with spaces", "日本語"} {
		d.MustAdd(n)
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Names(), d2.Names()) {
		t.Fatalf("round trip changed names: %v vs %v", d.Names(), d2.Names())
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("alice\nalice\n")); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := Read(strings.NewReader("alice\n\nbob\n")); err == nil {
		t.Fatal("empty line accepted")
	}
}

func TestFileAndDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewSet()
	s.Users.MustAdd("alice")
	s.Items.MustAdd("http://example.com")
	s.Tags.MustAdd("golang")
	s.Tags.MustAdd("databases")
	if err := s.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Users.Len() != 1 || s2.Items.Len() != 1 || s2.Tags.Len() != 2 {
		t.Fatalf("set sizes wrong: %d/%d/%d", s2.Users.Len(), s2.Items.Len(), s2.Tags.Len())
	}
	if id, ok := s2.Tags.ID("databases"); !ok || id != 1 {
		t.Fatalf("tag id = %d,%v", id, ok)
	}
	if _, err := ReadDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestPropertyRoundTripPreservesIDs(t *testing.T) {
	f := func(raw []string) bool {
		d := New()
		want := map[string]int32{}
		for _, n := range raw {
			if n == "" || strings.ContainsAny(n, "\n\r") {
				continue
			}
			id, err := d.Add(n)
			if err != nil {
				return false
			}
			if prev, ok := want[n]; ok && prev != id {
				return false
			}
			want[n] = id
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			return false
		}
		d2, err := Read(&buf)
		if err != nil {
			return false
		}
		for n, id := range want {
			got, ok := d2.ID(n)
			if !ok || got != id {
				return false
			}
		}
		return d2.Len() == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
