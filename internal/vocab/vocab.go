// Package vocab maps external string names (user handles, item URLs,
// tag words) to the dense integer ids the engine works with, and back.
// It is the thin dictionary layer any real deployment puts between its
// application data and this library, with a line-oriented persistence
// format so corpora can ship with readable vocabularies.
package vocab

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Dict is an append-only string ↔ dense-id dictionary. Ids are assigned
// in insertion order starting at 0. The zero value is not usable; use
// New.
type Dict struct {
	byName map[string]int32
	names  []string
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{byName: make(map[string]int32)}
}

// Len reports the number of entries.
func (d *Dict) Len() int { return len(d.names) }

// Add interns a name, returning its id (existing or new). Empty names
// and names containing newlines are rejected (they would corrupt the
// persistence format).
func (d *Dict) Add(name string) (int32, error) {
	if name == "" {
		return 0, errors.New("vocab: empty name")
	}
	if strings.ContainsAny(name, "\n\r") {
		return 0, fmt.Errorf("vocab: name %q contains line breaks", name)
	}
	if id, ok := d.byName[name]; ok {
		return id, nil
	}
	id := int32(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id, nil
}

// MustAdd is Add for static initialization; it panics on invalid names.
func (d *Dict) MustAdd(name string) int32 {
	id, err := d.Add(name)
	if err != nil {
		panic(err)
	}
	return id
}

// ID looks up a name.
func (d *Dict) ID(name string) (int32, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the name of an id, or "" and false when out of range.
func (d *Dict) Name(id int32) (string, bool) {
	if id < 0 || int(id) >= len(d.names) {
		return "", false
	}
	return d.names[id], true
}

// Names returns all names in id order. The slice aliases internal
// storage and must not be modified.
func (d *Dict) Names() []string { return d.names }

// Clone returns an independent copy of the dictionary. Ids are
// preserved; later Adds to either copy do not affect the other.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		byName: make(map[string]int32, len(d.byName)),
		names:  append([]string(nil), d.names...),
	}
	for name, id := range d.byName {
		c.byName[name] = id
	}
	return c
}

// Write persists the dictionary: one name per line, in id order.
func (d *Dict) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, n := range d.names {
		if _, err := bw.WriteString(n); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read loads a dictionary written by Write. Duplicate lines are an
// error (they would silently alias two ids on round-trip).
func Read(r io.Reader) (*Dict, error) {
	d := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		name := sc.Text()
		if name == "" {
			return nil, fmt.Errorf("vocab: empty name at line %d", line)
		}
		if _, ok := d.byName[name]; ok {
			return nil, fmt.Errorf("vocab: duplicate name %q at line %d", name, line)
		}
		if _, err := d.Add(name); err != nil {
			return nil, fmt.Errorf("vocab: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteFile persists to a path.
func (d *Dict) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads from a path.
func ReadFile(path string) (*Dict, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Set bundles the three dictionaries of a corpus.
type Set struct {
	Users *Dict
	Items *Dict
	Tags  *Dict
}

// NewSet returns three empty dictionaries.
func NewSet() *Set {
	return &Set{Users: New(), Items: New(), Tags: New()}
}

// WriteDir persists the set as users.txt, items.txt and tags.txt under
// dir (created if needed).
func (s *Set) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		d    *Dict
	}{{"users.txt", s.Users}, {"items.txt", s.Items}, {"tags.txt", s.Tags}} {
		if err := f.d.WriteFile(dir + "/" + f.name); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir loads a set persisted by WriteDir.
func ReadDir(dir string) (*Set, error) {
	s := &Set{}
	var err error
	if s.Users, err = ReadFile(dir + "/users.txt"); err != nil {
		return nil, err
	}
	if s.Items, err = ReadFile(dir + "/items.txt"); err != nil {
		return nil, err
	}
	if s.Tags, err = ReadFile(dir + "/tags.txt"); err != nil {
		return nil, err
	}
	return s, nil
}
