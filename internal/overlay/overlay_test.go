package overlay

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

func base(t testing.TB) (*graph.Graph, *tagstore.Store) {
	t.Helper()
	gb := graph.NewBuilder(3)
	gb.AddEdge(0, 1, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(3, 2, 1)
	tb.Add(1, 0, 0)
	s, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestNewValidation(t *testing.T) {
	g, s := base(t)
	if _, err := New(nil, s); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	s4, _ := tagstore.NewBuilder(4, 1, 1).Build()
	if _, err := New(g, s4); err == nil {
		t.Fatal("mismatched universes accepted")
	}
}

func TestMutationsInvisibleUntilCompact(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Tag(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Befriend(1, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	sg, ss := o.Snapshot()
	if sg.HasEdge(1, 2) || ss.TF(0, 1, 0) != 0 {
		t.Fatal("pending mutations visible before compaction")
	}
	pe, pt := o.Pending()
	if pe != 1 || pt != 1 {
		t.Fatalf("Pending = %d,%d want 1,1", pe, pt)
	}
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	sg, ss = o.Snapshot()
	if !sg.HasEdge(1, 2) {
		t.Fatal("edge missing after compaction")
	}
	if ss.TF(0, 1, 0) != 1 {
		t.Fatal("triple missing after compaction")
	}
	pe, pt = o.Pending()
	if pe != 0 || pt != 0 {
		t.Fatal("pending not cleared after compaction")
	}
	if o.Compactions() != 1 {
		t.Fatalf("Compactions = %d", o.Compactions())
	}
}

func TestCompactIdempotentWhenClean(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	g1, s1 := o.Snapshot()
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	g2, s2 := o.Snapshot()
	if g1 != g2 || s1 != s2 {
		t.Fatal("no-op compaction replaced snapshot")
	}
	if o.Compactions() != 0 {
		t.Fatal("no-op compaction counted")
	}
}

func TestUniverseGrowth(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	u := o.AddUser()
	i := o.AddItem()
	tg := o.AddTag()
	if u != 3 || i != 2 || tg != 1 {
		t.Fatalf("new ids = %d,%d,%d", u, i, tg)
	}
	if err := o.Befriend(0, u, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := o.Tag(u, i, tg); err != nil {
		t.Fatal(err)
	}
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	sg, ss := o.Snapshot()
	if sg.NumUsers() != 4 || ss.NumItems() != 3 || ss.NumTags() != 2 {
		t.Fatalf("universe after growth: %d users, %d items, %d tags",
			sg.NumUsers(), ss.NumItems(), ss.NumTags())
	}
	if w, ok := sg.EdgeWeight(0, 3); !ok || w != 0.7 {
		t.Fatal("new user's edge missing")
	}
	if ss.TF(3, 2, 1) != 1 {
		t.Fatal("new user's triple missing")
	}
}

func TestMutationValidation(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Befriend(0, 0, 0.5); err == nil {
		t.Fatal("self-friendship accepted")
	}
	if err := o.Befriend(0, 9, 0.5); err == nil {
		t.Fatal("out-of-range friend accepted")
	}
	if err := o.Befriend(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := o.Befriend(0, 1, 1.5); err == nil {
		t.Fatal("weight > 1 accepted")
	}
	if err := o.Tag(9, 0, 0); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if err := o.Tag(0, 9, 0); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if err := o.Tag(0, 0, 9); err == nil {
		t.Fatal("out-of-range tag accepted")
	}
}

func TestDuplicateEdgeMaxWins(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// base edge (0,1) has weight 0.5; strengthen it
	if err := o.Befriend(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	sg, _ := o.Snapshot()
	if w, _ := sg.EdgeWeight(0, 1); w != 0.9 {
		t.Fatalf("strengthened weight = %g, want 0.9", w)
	}
	// weakening is ignored (max wins)
	if err := o.Befriend(0, 1, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := o.Compact(); err != nil {
		t.Fatal(err)
	}
	sg, _ = o.Snapshot()
	if w, _ := sg.EdgeWeight(0, 1); w != 0.9 {
		t.Fatalf("weakened weight = %g, want 0.9 preserved", w)
	}
}

func TestEngineQueriesSeeUpdatesAfterCompact(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(o, core.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 5}
	ans, err := e.SocialMerge(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// base: friend u1 tagged item 0 → one result, score 0.5
	if len(ans.Results) != 1 || math.Abs(ans.Results[0].Score-0.5) > 1e-12 {
		t.Fatalf("base answer = %v", ans.Results)
	}
	// user 2 tags item 1, then befriends user 0 directly
	if err := e.Tag(2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Befriend(0, 2, 0.8); err != nil {
		t.Fatal(err)
	}
	// not compacted yet: same answer
	ans, err = e.SocialMerge(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 1 {
		t.Fatalf("uncompacted answer changed: %v", ans.Results)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	ans, err = e.SocialMerge(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 2 {
		t.Fatalf("post-compaction answer = %v, want 2 results", ans.Results)
	}
	// new result: item 1 with score 0.8
	found := false
	for _, r := range ans.Results {
		if r.Item == 1 && math.Abs(r.Score-0.8) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("new tagging not reflected: %v", ans.Results)
	}
	// all three algorithms agree on the snapshot
	if _, err := e.ExactSocial(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GlobalTopK(q); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAutoCompaction(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(o, core.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Tag(0, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if o.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1 after 3 mutations with threshold 3", o.Compactions())
	}
	_, ss := o.Snapshot()
	if ss.TF(0, 1, 0) != 3 {
		t.Fatalf("TF = %d, want 3", ss.TF(0, 1, 0))
	}
}

func TestConcurrentMutateAndQuery(t *testing.T) {
	g, s := base(t)
	o, err := New(g, s)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(o, core.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					if err := e.Tag(graph.UserID(w%3), tagstore.ItemID(i%2), 0); err != nil {
						errs <- err
						return
					}
				} else {
					q := core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}
					if _, err := e.SocialMerge(q, core.Options{}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
}
