// Package overlay adds dynamic updates on top of the immutable base
// structures: new tagging actions and new/strengthened friendships
// accumulate in a mutable delta that queries see immediately, and a
// compaction step folds the delta back into fresh immutable base
// structures. This is the "handling evolving networks" extension the
// evaluation's future-work discussion calls for.
//
// Concurrency: an Overlay serializes mutations with a mutex and serves
// reads from immutable snapshots, so readers never block writers longer
// than a pointer swap. Query execution goes through Snapshot(), which
// returns a consistent (graph, store) pair.
package overlay

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/tagstore"
)

// Overlay is a mutable view over an immutable base dataset.
type Overlay struct {
	mu sync.Mutex

	baseGraph *graph.Graph
	baseStore *tagstore.Store

	// pending deltas since the last compaction
	pendingEdges   []graph.Edge
	pendingTriples []tagstore.Triple

	// current snapshot (base + compacted deltas)
	snapGraph *graph.Graph
	snapStore *tagstore.Store

	// universe growth
	numUsers, numItems, numTags int

	compactions int
}

// New wraps a base dataset. The base structures are never modified.
func New(g *graph.Graph, s *tagstore.Store) (*Overlay, error) {
	if g == nil || s == nil {
		return nil, fmt.Errorf("overlay: nil base graph or store")
	}
	if g.NumUsers() != s.NumUsers() {
		return nil, fmt.Errorf("overlay: graph has %d users, store has %d", g.NumUsers(), s.NumUsers())
	}
	return &Overlay{
		baseGraph: g,
		baseStore: s,
		snapGraph: g,
		snapStore: s,
		numUsers:  g.NumUsers(),
		numItems:  s.NumItems(),
		numTags:   s.NumTags(),
	}, nil
}

// Snapshot returns the current consistent (graph, store) pair. Pending
// (uncompacted) mutations are not yet visible; call Compact to fold
// them in. The returned structures are immutable and safe to query
// concurrently.
func (o *Overlay) Snapshot() (*graph.Graph, *tagstore.Store) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.snapGraph, o.snapStore
}

// Pending reports how many edge and triple mutations await compaction.
func (o *Overlay) Pending() (edges, triples int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pendingEdges), len(o.pendingTriples)
}

// Compactions reports how many compactions have run.
func (o *Overlay) Compactions() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.compactions
}

// AddUser grows the user universe by one and returns the new id.
func (o *Overlay) AddUser() graph.UserID {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := graph.UserID(o.numUsers)
	o.numUsers++
	return id
}

// AddItem grows the item universe by one and returns the new id.
func (o *Overlay) AddItem() tagstore.ItemID {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := tagstore.ItemID(o.numItems)
	o.numItems++
	return id
}

// AddTag grows the tag universe by one and returns the new id.
func (o *Overlay) AddTag() tagstore.TagID {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := tagstore.TagID(o.numTags)
	o.numTags++
	return id
}

// Befriend records a (new or strengthened) friendship. Weight must lie
// in (0, 1]; the maximum of duplicate declarations wins at compaction.
func (o *Overlay) Befriend(u, v graph.UserID, weight float64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if u < 0 || int(u) >= o.numUsers || v < 0 || int(v) >= o.numUsers {
		return fmt.Errorf("overlay: user pair (%d,%d) outside [0,%d)", u, v, o.numUsers)
	}
	if u == v {
		return fmt.Errorf("overlay: self-friendship for user %d", u)
	}
	if weight <= 0 || weight > 1 {
		return fmt.Errorf("overlay: weight %g outside (0,1]", weight)
	}
	o.pendingEdges = append(o.pendingEdges, graph.Edge{U: u, V: v, Weight: weight})
	return nil
}

// Tag records a tagging action (count 1).
func (o *Overlay) Tag(user graph.UserID, item tagstore.ItemID, tag tagstore.TagID) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if user < 0 || int(user) >= o.numUsers {
		return fmt.Errorf("overlay: user %d outside [0,%d)", user, o.numUsers)
	}
	if item < 0 || int(item) >= o.numItems {
		return fmt.Errorf("overlay: item %d outside [0,%d)", item, o.numItems)
	}
	if tag < 0 || int(tag) >= o.numTags {
		return fmt.Errorf("overlay: tag %d outside [0,%d)", tag, o.numTags)
	}
	o.pendingTriples = append(o.pendingTriples, tagstore.Triple{
		User: int32(user), Item: item, Tag: tag, Count: 1,
	})
	return nil
}

// Compact folds all pending mutations (and any universe growth) into
// fresh immutable snapshot structures. It is idempotent when nothing is
// pending. Compaction cost is O(base + delta); amortize it by batching
// mutations.
func (o *Overlay) Compact() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.pendingEdges) == 0 && len(o.pendingTriples) == 0 &&
		o.snapGraph.NumUsers() == o.numUsers &&
		o.snapStore.NumItems() == o.numItems &&
		o.snapStore.NumTags() == o.numTags {
		return nil
	}

	gb := graph.NewBuilder(o.numUsers)
	for _, e := range o.snapGraph.Edges() {
		gb.AddEdge(e.U, e.V, e.Weight)
	}
	for _, e := range o.pendingEdges {
		gb.AddEdge(e.U, e.V, e.Weight)
	}
	g, err := gb.Build()
	if err != nil {
		return fmt.Errorf("overlay: compacting graph: %w", err)
	}

	tb := tagstore.NewBuilder(o.numUsers, o.numItems, o.numTags)
	for _, tr := range o.snapStore.Triples() {
		tb.AddCount(tr.User, tr.Item, tr.Tag, tr.Count)
	}
	for _, tr := range o.pendingTriples {
		tb.AddCount(tr.User, tr.Item, tr.Tag, tr.Count)
	}
	s, err := tb.Build()
	if err != nil {
		return fmt.Errorf("overlay: compacting store: %w", err)
	}

	o.snapGraph = g
	o.snapStore = s
	o.pendingEdges = o.pendingEdges[:0]
	o.pendingTriples = o.pendingTriples[:0]
	o.compactions++
	return nil
}
