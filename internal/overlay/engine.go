package overlay

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

// Engine is a queryable view over an Overlay: it rebuilds the immutable
// core.Engine whenever a compaction changed the snapshot, and can be
// configured to compact automatically after a number of mutations.
// Reads and writes may proceed concurrently; queries always run on a
// consistent snapshot.
type Engine struct {
	overlay *Overlay
	cfg     core.Config

	// AutoCompactEvery compacts after this many mutations (0 disables
	// auto-compaction; callers then compact explicitly).
	autoCompactEvery int

	mu        sync.Mutex
	engine    *core.Engine
	mutations int
	engGraph  *graph.Graph // snapshot the current engine was built from
}

// NewEngine wraps an overlay with query capability. autoCompactEvery
// ≤ 0 disables automatic compaction.
func NewEngine(o *Overlay, cfg core.Config, autoCompactEvery int) (*Engine, error) {
	if o == nil {
		return nil, fmt.Errorf("overlay: nil overlay")
	}
	e := &Engine{overlay: o, cfg: cfg, autoCompactEvery: autoCompactEvery}
	if err := e.refresh(); err != nil {
		return nil, err
	}
	return e, nil
}

// refresh rebuilds the core engine if the overlay snapshot moved.
func (e *Engine) refresh() error {
	g, s := e.overlay.Snapshot()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.engine != nil && g == e.engGraph {
		return nil
	}
	eng, err := core.NewEngine(g, s, e.cfg)
	if err != nil {
		return err
	}
	e.engine = eng
	e.engGraph = g
	return nil
}

// current returns the engine for the newest compacted snapshot.
func (e *Engine) current() (*core.Engine, error) {
	if err := e.refresh(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.engine, nil
}

// Current returns the immutable core engine for the newest compacted
// snapshot, for callers that must pin one snapshot across several
// operations (e.g. materialize a seeker horizon, then query with it).
func (e *Engine) Current() (*core.Engine, error) {
	return e.current()
}

func (e *Engine) noteMutation() error {
	e.mu.Lock()
	e.mutations++
	due := e.autoCompactEvery > 0 && e.mutations >= e.autoCompactEvery
	if due {
		e.mutations = 0
	}
	e.mu.Unlock()
	if due {
		return e.overlay.Compact()
	}
	return nil
}

// Tag records a tagging action, possibly triggering auto-compaction.
func (e *Engine) Tag(user graph.UserID, item tagstore.ItemID, tag tagstore.TagID) error {
	if err := e.overlay.Tag(user, item, tag); err != nil {
		return err
	}
	return e.noteMutation()
}

// Befriend records a friendship, possibly triggering auto-compaction.
func (e *Engine) Befriend(u, v graph.UserID, weight float64) error {
	if err := e.overlay.Befriend(u, v, weight); err != nil {
		return err
	}
	return e.noteMutation()
}

// Compact forces pending mutations into the queryable snapshot.
func (e *Engine) Compact() error {
	if err := e.overlay.Compact(); err != nil {
		return err
	}
	return e.refresh()
}

// SocialMerge answers a query on the newest compacted snapshot.
func (e *Engine) SocialMerge(q core.Query, opts core.Options) (core.Answer, error) {
	eng, err := e.current()
	if err != nil {
		return core.Answer{}, err
	}
	return eng.SocialMerge(q, opts)
}

// ExactSocial answers a query with the exact baseline on the newest
// compacted snapshot.
func (e *Engine) ExactSocial(q core.Query) (core.Answer, error) {
	eng, err := e.current()
	if err != nil {
		return core.Answer{}, err
	}
	return eng.ExactSocial(q)
}

// GlobalTopK answers a query with the non-personalized baseline on the
// newest compacted snapshot.
func (e *Engine) GlobalTopK(q core.Query) (core.Answer, error) {
	eng, err := e.current()
	if err != nil {
		return core.Answer{}, err
	}
	return eng.GlobalTopK(q)
}
