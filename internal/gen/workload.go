package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tagstore"
)

// QuerySpec is one generated query: a seeker plus a tag set.
type QuerySpec struct {
	Seeker graph.UserID
	Tags   []tagstore.TagID
}

// WorkloadParams configures query generation.
type WorkloadParams struct {
	// NumQueries is the number of queries to draw.
	NumQueries int
	// TagsPerQuery is the size of each query's tag set.
	TagsPerQuery int
	// NeighborhoodBias ∈ [0,1]: probability each query tag is drawn
	// from the vocabulary of the seeker's friends (guaranteeing socially
	// answerable queries) rather than from the global distribution.
	NeighborhoodBias float64
	// SeekerPercentile, when in [0,100], fixes every seeker to the user
	// at that degree percentile; -1 draws seekers uniformly among users
	// with at least one friend.
	SeekerPercentile int
}

// DefaultWorkloadParams returns the standard workload: 2-tag queries,
// mostly neighbourhood-biased, uniform seekers.
func DefaultWorkloadParams() WorkloadParams {
	return WorkloadParams{
		NumQueries:       50,
		TagsPerQuery:     2,
		NeighborhoodBias: 0.8,
		SeekerPercentile: -1,
	}
}

// Workload draws a deterministic query workload from the dataset.
func Workload(ds *Dataset, p WorkloadParams, seed int64) ([]QuerySpec, error) {
	if p.NumQueries < 1 || p.TagsPerQuery < 1 {
		return nil, fmt.Errorf("gen: workload sizes (%d queries, %d tags) must be >= 1",
			p.NumQueries, p.TagsPerQuery)
	}
	if p.NeighborhoodBias < 0 || p.NeighborhoodBias > 1 {
		return nil, fmt.Errorf("gen: neighbourhood bias %g outside [0,1]", p.NeighborhoodBias)
	}
	rng := rand.New(rand.NewSource(seed))
	n := ds.Graph.NumUsers()
	if n == 0 {
		return nil, fmt.Errorf("gen: empty graph")
	}

	// Candidate seekers: users with at least one friend.
	var connected []graph.UserID
	for u := 0; u < n; u++ {
		if ds.Graph.Degree(graph.UserID(u)) > 0 {
			connected = append(connected, graph.UserID(u))
		}
	}
	if len(connected) == 0 {
		return nil, fmt.Errorf("gen: no connected users to act as seekers")
	}

	nt := ds.Store.NumTags()
	if p.TagsPerQuery > nt {
		return nil, fmt.Errorf("gen: %d tags per query exceeds tag universe %d", p.TagsPerQuery, nt)
	}
	tagZ := rand.NewZipf(rng, 1.1, 1, uint64(nt-1))

	queries := make([]QuerySpec, 0, p.NumQueries)
	for qi := 0; qi < p.NumQueries; qi++ {
		var seeker graph.UserID
		if p.SeekerPercentile >= 0 && p.SeekerPercentile <= 100 {
			seeker = ds.Graph.DegreePercentileUser(p.SeekerPercentile)
		} else {
			seeker = connected[rng.Intn(len(connected))]
		}
		// Vocabulary of the seeker's friends (and the seeker).
		var vocab []tagstore.TagID
		nbrs, _ := ds.Graph.Neighbors(seeker)
		pool := append([]graph.UserID{seeker}, nbrs...)
		for _, v := range pool {
			vocab = append(vocab, ds.Store.UserTags(int32(v))...)
		}
		used := make(map[tagstore.TagID]bool, p.TagsPerQuery)
		tags := make([]tagstore.TagID, 0, p.TagsPerQuery)
		for len(tags) < p.TagsPerQuery {
			var t tagstore.TagID
			if len(vocab) > 0 && rng.Float64() < p.NeighborhoodBias {
				t = vocab[rng.Intn(len(vocab))]
			} else {
				t = tagstore.TagID(tagZ.Uint64())
			}
			if used[t] {
				// Degenerate vocabularies may not have enough distinct
				// tags; fall back to a global draw.
				t = tagstore.TagID(tagZ.Uint64())
				if used[t] {
					t = tagstore.TagID(rng.Intn(nt))
				}
				if used[t] {
					continue
				}
			}
			used[t] = true
			tags = append(tags, t)
		}
		queries = append(queries, QuerySpec{Seeker: seeker, Tags: tags})
	}
	return queries, nil
}
