package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tagstore"
)

// Dataset bundles a social graph with its tagging store.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	Store *tagstore.Store
}

// CorpusParams configures corpus generation. Tag and item popularity are
// Zipf-distributed; Homophily controls how often a user's tagging action
// copies an item already tagged by one of their friends (the social
// correlation personalized search exploits).
type CorpusParams struct {
	Name     string
	Graph    GraphParams
	NumItems int
	NumTags  int
	// TriplesPerUser is the mean number of tagging actions per user.
	TriplesPerUser int
	// TagZipfS and ItemZipfS are the Zipf exponents (> 1).
	TagZipfS  float64
	ItemZipfS float64
	// Homophily ∈ [0,1]: probability a tagging action reuses an item a
	// friend already tagged.
	Homophily float64
}

func (p CorpusParams) validate() error {
	if err := p.Graph.validate(); err != nil {
		return err
	}
	if p.NumItems < 1 || p.NumTags < 1 {
		return fmt.Errorf("gen: items %d / tags %d must be >= 1", p.NumItems, p.NumTags)
	}
	if p.TriplesPerUser < 0 {
		return fmt.Errorf("gen: TriplesPerUser %d negative", p.TriplesPerUser)
	}
	if p.TagZipfS <= 1 || p.ItemZipfS <= 1 {
		return fmt.Errorf("gen: zipf exponents (%g, %g) must be > 1", p.TagZipfS, p.ItemZipfS)
	}
	if p.Homophily < 0 || p.Homophily > 1 {
		return fmt.Errorf("gen: homophily %g outside [0,1]", p.Homophily)
	}
	return nil
}

// Generate builds a corpus deterministically from the seed.
func Generate(p CorpusParams, seed int64) (*Dataset, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	g, err := NewGraph(p.Graph, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	tagZ := rand.NewZipf(rng, p.TagZipfS, 1, uint64(p.NumTags-1))
	itemZ := rand.NewZipf(rng, p.ItemZipfS, 1, uint64(p.NumItems-1))

	n := p.Graph.NumUsers
	b := tagstore.NewBuilder(n, p.NumItems, p.NumTags)
	// userItems[u] collects items u has tagged, the pool friends copy
	// from. Users are processed in id order; homophily copies look at
	// already-processed friends, which suffices to correlate
	// neighbourhoods.
	userItems := make([][]tagstore.ItemID, n)
	for u := 0; u < n; u++ {
		// Per-user count: mean TriplesPerUser, jittered ±50%.
		count := p.TriplesPerUser
		if count > 0 {
			count = count/2 + rng.Intn(count+1)
		}
		nbrs, _ := g.Neighbors(graph.UserID(u))
		for a := 0; a < count; a++ {
			var item tagstore.ItemID
			copied := false
			if p.Homophily > 0 && len(nbrs) > 0 && rng.Float64() < p.Homophily {
				f := nbrs[rng.Intn(len(nbrs))]
				if pool := userItems[f]; len(pool) > 0 {
					item = pool[rng.Intn(len(pool))]
					copied = true
				}
			}
			if !copied {
				item = tagstore.ItemID(itemZ.Uint64())
			}
			tag := tagstore.TagID(tagZ.Uint64())
			b.Add(int32(u), item, tag)
			userItems[u] = append(userItems[u], item)
		}
	}
	store, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: p.Name, Graph: g, Store: store}, nil
}

// Scale multiplies the user/item/tag universe of a parameter preset.
// scale = 1 keeps the preset; 2 doubles every universe dimension.
func (p CorpusParams) Scale(scale float64) CorpusParams {
	if scale <= 0 {
		scale = 1
	}
	q := p
	q.Graph.NumUsers = max(1, int(float64(p.Graph.NumUsers)*scale))
	q.NumItems = max(1, int(float64(p.NumItems)*scale))
	q.NumTags = max(1, int(float64(p.NumTags)*scale))
	return q
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DeliciousParams is the bookmark-site-shaped preset: scale-free graph,
// heavy tagging, strong homophily (people bookmark what friends
// bookmark).
func DeliciousParams() CorpusParams {
	return CorpusParams{
		Name: "delicious-like",
		Graph: GraphParams{
			Kind: BarabasiAlbert, NumUsers: 2000, M: 7,
			MinWeight: 0.2, MaxWeight: 0.8,
		},
		NumItems:       8000,
		NumTags:        1200,
		TriplesPerUser: 110,
		TagZipfS:       1.07,
		ItemZipfS:      1.1,
		Homophily:      0.5,
	}
}

// FlickrParams is the photo-site-shaped preset: small-world graph with
// high clustering, larger item universe, lighter tagging.
func FlickrParams() CorpusParams {
	return CorpusParams{
		Name: "flickr-like",
		Graph: GraphParams{
			Kind: WattsStrogatz, NumUsers: 2000, K: 8, P: 0.1,
			MinWeight: 0.2, MaxWeight: 0.8,
		},
		NumItems:       16000,
		NumTags:        800,
		TriplesPerUser: 60,
		TagZipfS:       1.15,
		ItemZipfS:      1.05,
		Homophily:      0.35,
	}
}

// TwitterParams is the microblog-shaped preset: dense hub-heavy
// scale-free graph with bursty tagging of few hot items.
func TwitterParams() CorpusParams {
	return CorpusParams{
		Name: "twitter-like",
		Graph: GraphParams{
			Kind: BarabasiAlbert, NumUsers: 2000, M: 14,
			MinWeight: 0.15, MaxWeight: 0.7,
		},
		NumItems:       4000,
		NumTags:        600,
		TriplesPerUser: 80,
		TagZipfS:       1.25,
		ItemZipfS:      1.3,
		Homophily:      0.25,
	}
}

// Presets returns the three standard corpora presets.
func Presets() []CorpusParams {
	return []CorpusParams{DeliciousParams(), FlickrParams(), TwitterParams()}
}
