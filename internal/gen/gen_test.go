package gen

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestGraphKindString(t *testing.T) {
	if BarabasiAlbert.String() != "barabasi-albert" ||
		WattsStrogatz.String() != "watts-strogatz" ||
		ErdosRenyi.String() != "erdos-renyi" {
		t.Fatal("GraphKind names wrong")
	}
	if GraphKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestNewGraphValidation(t *testing.T) {
	bad := []GraphParams{
		{Kind: BarabasiAlbert, NumUsers: 0, M: 2, MinWeight: 0.5, MaxWeight: 1},
		{Kind: BarabasiAlbert, NumUsers: 10, M: 0, MinWeight: 0.5, MaxWeight: 1},
		{Kind: WattsStrogatz, NumUsers: 10, K: 0, MinWeight: 0.5, MaxWeight: 1},
		{Kind: WattsStrogatz, NumUsers: 10, K: 2, P: 1.5, MinWeight: 0.5, MaxWeight: 1},
		{Kind: ErdosRenyi, NumUsers: 10, P: -0.1, MinWeight: 0.5, MaxWeight: 1},
		{Kind: BarabasiAlbert, NumUsers: 10, M: 2, MinWeight: 0, MaxWeight: 1},
		{Kind: BarabasiAlbert, NumUsers: 10, M: 2, MinWeight: 0.9, MaxWeight: 0.5},
		{Kind: GraphKind(42), NumUsers: 10, MinWeight: 0.5, MaxWeight: 1},
	}
	for i, p := range bad {
		if _, err := NewGraph(p, 1); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	p := GraphParams{Kind: BarabasiAlbert, NumUsers: 500, M: 3, MinWeight: 0.3, MaxWeight: 1}
	g, err := NewGraph(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 500 {
		t.Fatalf("NumUsers = %d", g.NumUsers())
	}
	// BA graphs are connected and have ~M*N edges.
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("BA graph has %d components, want 1", count)
	}
	if e := g.NumEdges(); e < 3*450 || e > 3*500+10 {
		t.Fatalf("NumEdges = %d, out of expected BA range", e)
	}
	// Power-law shape: max degree far above median.
	s := g.ComputeStats(64)
	if s.MaxDegree < 4*s.MedianDegree {
		t.Fatalf("BA max degree %d not hub-like vs median %d", s.MaxDegree, s.MedianDegree)
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	p := GraphParams{Kind: WattsStrogatz, NumUsers: 400, K: 4, P: 0.05, MinWeight: 0.3, MaxWeight: 1}
	g, err := NewGraph(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	// near-lattice: clustering stays high
	s := g.ComputeStats(64)
	if s.ClusteringSample < 0.2 {
		t.Fatalf("WS clustering %g too low for P=0.05", s.ClusteringSample)
	}
	if s.AvgDegree < 6 || s.AvgDegree > 9 {
		t.Fatalf("WS avg degree %g, want ~8", s.AvgDegree)
	}
}

func TestErdosRenyiShape(t *testing.T) {
	p := GraphParams{Kind: ErdosRenyi, NumUsers: 300, P: 0.05, MinWeight: 0.3, MaxWeight: 1}
	g, err := NewGraph(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	// E[edges] = C(300,2)*0.05 ≈ 2242; allow wide tolerance.
	if e := g.NumEdges(); e < 1800 || e > 2700 {
		t.Fatalf("ER edges = %d, far from expectation 2242", e)
	}
}

func TestNewGraphDeterministic(t *testing.T) {
	p := GraphParams{Kind: BarabasiAlbert, NumUsers: 200, M: 3, MinWeight: 0.3, MaxWeight: 1}
	g1, err := NewGraph(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGraph(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
		t.Fatal("same seed produced different graphs")
	}
	g3, err := NewGraph(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g1.Edges(), g3.Edges()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestWSGraphDeterministic(t *testing.T) {
	p := GraphParams{Kind: WattsStrogatz, NumUsers: 150, K: 3, P: 0.2, MinWeight: 0.3, MaxWeight: 1}
	g1, err := NewGraph(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGraph(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
		t.Fatal("same seed produced different WS graphs")
	}
}

func tinyParams() CorpusParams {
	return CorpusParams{
		Name: "tiny",
		Graph: GraphParams{
			Kind: BarabasiAlbert, NumUsers: 120, M: 3,
			MinWeight: 0.3, MaxWeight: 1,
		},
		NumItems:       300,
		NumTags:        60,
		TriplesPerUser: 25,
		TagZipfS:       1.1,
		ItemZipfS:      1.1,
		Homophily:      0.5,
	}
}

func TestGenerateCorpus(t *testing.T) {
	ds, err := Generate(tinyParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumUsers() != 120 || ds.Store.NumUsers() != 120 {
		t.Fatalf("user universes disagree: %d vs %d", ds.Graph.NumUsers(), ds.Store.NumUsers())
	}
	st := ds.Store.ComputeStats()
	if st.Triples == 0 {
		t.Fatal("no triples generated")
	}
	// mean 25 per user, jittered: total should be within a loose band
	if st.Triples < 120*8 || st.Triples > 120*40 {
		t.Fatalf("triples = %d, outside band for mean 25/user", st.Triples)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, err := Generate(tinyParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(tinyParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1.Store.Triples(), d2.Store.Triples()) {
		t.Fatal("same seed produced different corpora")
	}
}

func TestGenerateValidation(t *testing.T) {
	p := tinyParams()
	p.TagZipfS = 1.0
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("zipf s=1 accepted")
	}
	p = tinyParams()
	p.Homophily = 1.5
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("homophily 1.5 accepted")
	}
	p = tinyParams()
	p.NumItems = 0
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("zero items accepted")
	}
	p = tinyParams()
	p.TriplesPerUser = -1
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("negative triples accepted")
	}
}

func TestHomophilyIncreasesFriendOverlap(t *testing.T) {
	// Metric: mean count of shared items over friend pairs divided by
	// the same over random pairs. Homophily should raise the ratio.
	ratio := func(h float64) float64 {
		p := tinyParams()
		p.Homophily = h
		p.NumItems = 50_000 // large universe so chance overlap is rare
		p.ItemZipfS = 1.01  // near-flat: draws spread across the universe
		ds, err := Generate(p, 9)
		if err != nil {
			t.Fatal(err)
		}
		n := ds.Graph.NumUsers()
		items := make([]map[int32]bool, n)
		for u := 0; u < n; u++ {
			items[u] = make(map[int32]bool)
		}
		for _, tr := range ds.Store.Triples() {
			items[tr.User][tr.Item] = true
		}
		shared := func(u, v int) float64 {
			c := 0
			for it := range items[u] {
				if items[v][it] {
					c++
				}
			}
			return float64(c)
		}
		var friendSum float64
		var friendPairs int
		for _, e := range ds.Graph.Edges() {
			friendSum += shared(int(e.U), int(e.V))
			friendPairs++
		}
		var randSum float64
		randPairs := 0
		for u := 0; u < n; u++ {
			for d := 7; d <= 35; d += 7 { // fixed non-adjacent strides
				v := (u + d*13) % n
				if u != v && !ds.Graph.HasEdge(int32(u), int32(v)) {
					randSum += shared(u, v)
					randPairs++
				}
			}
		}
		if friendPairs == 0 || randPairs == 0 || randSum == 0 {
			t.Fatal("degenerate overlap sample")
		}
		return (friendSum / float64(friendPairs)) / (randSum / float64(randPairs))
	}
	lo, hi := ratio(0), ratio(0.8)
	if hi <= lo*1.2 {
		t.Fatalf("homophily had no effect: friend/random overlap ratio %g (h=0) vs %g (h=0.8)", lo, hi)
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("Presets len = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		small := p.Scale(0.05)
		if small.Graph.NumUsers >= p.Graph.NumUsers {
			t.Fatalf("%s: Scale(0.05) did not shrink", p.Name)
		}
		if _, err := Generate(small, 1); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	for _, want := range []string{"delicious-like", "flickr-like", "twitter-like"} {
		if !names[want] {
			t.Fatalf("missing preset %q", want)
		}
	}
}

func TestScaleClampsAndIdentity(t *testing.T) {
	p := tinyParams()
	q := p.Scale(0)
	if q.Graph.NumUsers != p.Graph.NumUsers {
		t.Fatal("Scale(0) should be identity")
	}
	q = p.Scale(0.0001)
	if q.Graph.NumUsers < 1 || q.NumItems < 1 || q.NumTags < 1 {
		t.Fatal("Scale floor violated")
	}
}

func TestWorkload(t *testing.T) {
	ds, err := Generate(tinyParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	wp := DefaultWorkloadParams()
	wp.NumQueries = 20
	qs, err := Workload(ds, wp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if ds.Graph.Degree(q.Seeker) == 0 {
			t.Fatalf("seeker %d has no friends", q.Seeker)
		}
		if len(q.Tags) != wp.TagsPerQuery {
			t.Fatalf("query has %d tags, want %d", len(q.Tags), wp.TagsPerQuery)
		}
		seen := map[int32]bool{}
		for _, tag := range q.Tags {
			if tag < 0 || int(tag) >= ds.Store.NumTags() {
				t.Fatalf("tag %d out of range", tag)
			}
			if seen[tag] {
				t.Fatalf("duplicate tag in query: %v", q.Tags)
			}
			seen[tag] = true
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	ds, err := Generate(tinyParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := Workload(ds, DefaultWorkloadParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Workload(ds, DefaultWorkloadParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatal("same seed produced different workloads")
	}
}

func TestWorkloadSeekerPercentile(t *testing.T) {
	ds, err := Generate(tinyParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	wp := DefaultWorkloadParams()
	wp.SeekerPercentile = 99
	qs, err := Workload(ds, wp, 5)
	if err != nil {
		t.Fatal(err)
	}
	hub := ds.Graph.DegreePercentileUser(99)
	for _, q := range qs {
		if q.Seeker != hub {
			t.Fatalf("seeker %d != percentile-99 user %d", q.Seeker, hub)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	ds, err := Generate(tinyParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Workload(ds, WorkloadParams{NumQueries: 0, TagsPerQuery: 1}, 1); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := Workload(ds, WorkloadParams{NumQueries: 1, TagsPerQuery: 0}, 1); err == nil {
		t.Fatal("zero tags accepted")
	}
	if _, err := Workload(ds, WorkloadParams{NumQueries: 1, TagsPerQuery: 1, NeighborhoodBias: 2}, 1); err == nil {
		t.Fatal("bias 2 accepted")
	}
	if _, err := Workload(ds, WorkloadParams{NumQueries: 1, TagsPerQuery: 10_000}, 1); err == nil {
		t.Fatal("tags-per-query beyond universe accepted")
	}
}

func TestGraphWithOneUser(t *testing.T) {
	p := GraphParams{Kind: BarabasiAlbert, NumUsers: 1, M: 1, MinWeight: 0.5, MaxWeight: 1}
	g, err := NewGraph(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 1 || g.NumEdges() != 0 {
		t.Fatalf("one-user graph wrong: %d users %d edges", g.NumUsers(), g.NumEdges())
	}
}

var _ = graph.UserID(0) // keep import used if assertions change
