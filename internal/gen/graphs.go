// Package gen synthesizes social tagging corpora and query workloads
// with the structural properties the evaluation needs: power-law or
// small-world social graphs, Zipf-distributed tag and item popularity,
// and controllable homophily (friends tag the same items), which is what
// makes socially personalized search meaningful. It replaces the
// proprietary del.icio.us/Flickr/Twitter crawls used by the original
// evaluation (see DESIGN.md §4 for the substitution rationale).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GraphKind selects the random-graph family.
type GraphKind int

const (
	// BarabasiAlbert grows a scale-free graph by preferential
	// attachment: each new vertex attaches to M existing vertices with
	// probability proportional to their degree. Degree distribution is
	// power-law — the shape of bookmarking and microblogging networks.
	BarabasiAlbert GraphKind = iota
	// WattsStrogatz builds a ring lattice with K neighbours per side and
	// rewires each edge with probability P — high clustering with short
	// paths, the shape of photo-sharing friend networks.
	WattsStrogatz
	// ErdosRenyi connects every pair independently with probability P —
	// the unstructured control case.
	ErdosRenyi
)

// String names the graph family.
func (k GraphKind) String() string {
	switch k {
	case BarabasiAlbert:
		return "barabasi-albert"
	case WattsStrogatz:
		return "watts-strogatz"
	case ErdosRenyi:
		return "erdos-renyi"
	default:
		return fmt.Sprintf("GraphKind(%d)", int(k))
	}
}

// GraphParams configures social-graph generation. Edge weights are drawn
// uniformly from [MinWeight, MaxWeight].
type GraphParams struct {
	Kind      GraphKind
	NumUsers  int
	M         int     // BarabasiAlbert: attachments per new vertex
	K         int     // WattsStrogatz: lattice neighbours per side
	P         float64 // WattsStrogatz rewire / ErdosRenyi edge probability
	MinWeight float64
	MaxWeight float64
}

func (p GraphParams) validate() error {
	if p.NumUsers < 1 {
		return fmt.Errorf("gen: NumUsers %d must be >= 1", p.NumUsers)
	}
	if p.MinWeight <= 0 || p.MaxWeight > 1 || p.MinWeight > p.MaxWeight {
		return fmt.Errorf("gen: weight range [%g,%g] invalid", p.MinWeight, p.MaxWeight)
	}
	switch p.Kind {
	case BarabasiAlbert:
		if p.M < 1 {
			return fmt.Errorf("gen: BA attachment M %d must be >= 1", p.M)
		}
	case WattsStrogatz:
		if p.K < 1 {
			return fmt.Errorf("gen: WS K %d must be >= 1", p.K)
		}
		if p.P < 0 || p.P > 1 {
			return fmt.Errorf("gen: WS rewire probability %g outside [0,1]", p.P)
		}
	case ErdosRenyi:
		if p.P < 0 || p.P > 1 {
			return fmt.Errorf("gen: ER probability %g outside [0,1]", p.P)
		}
	default:
		return fmt.Errorf("gen: unknown graph kind %d", int(p.Kind))
	}
	return nil
}

// NewGraph generates a social graph deterministically from the seed.
func NewGraph(p GraphParams, seed int64) (*graph.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	w := func() float64 {
		return p.MinWeight + (p.MaxWeight-p.MinWeight)*rng.Float64()
	}
	b := graph.NewBuilder(p.NumUsers)
	switch p.Kind {
	case BarabasiAlbert:
		buildBA(b, p.NumUsers, p.M, rng, w)
	case WattsStrogatz:
		buildWS(b, p.NumUsers, p.K, p.P, rng, w)
	case ErdosRenyi:
		buildER(b, p.NumUsers, p.P, rng, w)
	}
	return b.Build()
}

func buildBA(b *graph.Builder, n, m int, rng *rand.Rand, w func() float64) {
	if n == 1 {
		return
	}
	// repeated-vertex list implements preferential attachment in O(1)
	// per draw: every endpoint occurrence is one "vote".
	var votes []graph.UserID
	core := m + 1
	if core > n {
		core = n
	}
	// seed clique over the first core vertices
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			b.AddEdge(graph.UserID(i), graph.UserID(j), w())
			votes = append(votes, graph.UserID(i), graph.UserID(j))
		}
	}
	for v := core; v < n; v++ {
		seen := make(map[graph.UserID]bool, m)
		chosen := make([]graph.UserID, 0, m)
		for len(chosen) < m && len(chosen) < v {
			var t graph.UserID
			if len(votes) == 0 {
				t = graph.UserID(rng.Intn(v))
			} else {
				t = votes[rng.Intn(len(votes))]
			}
			if int(t) == v || seen[t] {
				// resample uniformly to escape repeated hub draws
				t = graph.UserID(rng.Intn(v))
				if seen[t] {
					continue
				}
			}
			seen[t] = true
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			b.AddEdge(graph.UserID(v), t, w())
			votes = append(votes, graph.UserID(v), t)
		}
	}
}

func buildWS(b *graph.Builder, n, k int, p float64, rng *rand.Rand, w func() float64) {
	if n < 2 {
		return
	}
	if k > (n-1)/2 {
		k = (n - 1) / 2
		if k < 1 {
			k = 1
		}
	}
	type pair struct{ u, v graph.UserID }
	seen := make(map[pair]bool)
	var order []pair // insertion order keeps weight assignment deterministic
	addNorm := func(u, v graph.UserID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := pair{u, v}
		if seen[key] {
			return false
		}
		seen[key] = true
		order = append(order, key)
		return true
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			u := graph.UserID(i)
			v := graph.UserID((i + j) % n)
			if p > 0 && rng.Float64() < p {
				// rewire to a uniform random non-duplicate target
				for attempt := 0; attempt < 8; attempt++ {
					cand := graph.UserID(rng.Intn(n))
					if addNorm(u, cand) {
						v = -1
						break
					}
				}
				if v == -1 {
					continue
				}
			}
			addNorm(u, v)
		}
	}
	for _, e := range order {
		b.AddEdge(e.u, e.v, w())
	}
}

func buildER(b *graph.Builder, n int, p float64, rng *rand.Rand, w func() float64) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(graph.UserID(i), graph.UserID(j), w())
			}
		}
	}
}
