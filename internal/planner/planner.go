// Package planner selects, per query, which of the engine's exact
// algorithms to run: a miniature cost-based optimizer over the
// algorithm portfolio (SocialMerge, ContextMerge, SocialTA, and — for
// purely global scoring — GlobalTopK).
//
// No single algorithm dominates: SocialMerge wins when the frontier
// bound bites early (steep proximity decay, selective tags), SocialTA
// wins for tiny k on Zipf-heavy corpora where a handful of sorted
// rounds certify, ContextMerge wins on very small social balls, and
// GlobalTopK is unbeatable when β = 0 makes the network irrelevant.
// The planner predicts each algorithm's access count from cheap query
// features — seeker degree, k, query-tag list lengths — using either a
// transparent heuristic (uncalibrated) or per-algorithm linear models
// fitted on a calibration workload (see Calibrate). The Ext-6
// experiment measures how close planned execution gets to the
// per-query oracle.
package planner

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/tagstore"
)

// Algorithm identifies one engine execution strategy.
type Algorithm int

const (
	// SocialMerge is the paper's incremental network-aware algorithm.
	SocialMerge Algorithm = iota
	// ContextMerge is the materialize-then-merge baseline.
	ContextMerge
	// SocialTA is the random-access threshold algorithm.
	SocialTA
	// GlobalTopK ignores the network (valid only when β = 0).
	GlobalTopK
	numAlgorithms
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case SocialMerge:
		return "SocialMerge"
	case ContextMerge:
		return "ContextMerge"
	case SocialTA:
		return "SocialTA"
	case GlobalTopK:
		return "GlobalTopK"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves an algorithm by its String spelling
// (case-insensitive). It reports false for unknown names.
func ParseAlgorithm(s string) (Algorithm, bool) {
	for a := SocialMerge; a < numAlgorithms; a++ {
		if strings.EqualFold(a.String(), strings.TrimSpace(s)) {
			return a, true
		}
	}
	return SocialMerge, false
}

// Available reports whether the algorithm can answer queries exactly on
// this planner's engine (SocialTA needs the item index, GlobalTopK
// needs β = 0).
func (p *Planner) Available(alg Algorithm) bool {
	for _, a := range p.available() {
		if a == alg {
			return true
		}
	}
	return false
}

// Features are the cheap per-query signals predictions are made from.
type Features struct {
	// K is the requested result count.
	K float64
	// Degree is the seeker's social degree.
	Degree float64
	// ListLen is the summed global posting-list length of the query
	// tags (tag selectivity).
	ListLen float64
	// Ball is a crude social-ball size estimate: degree amplified by
	// the corpus' average degree once (two-hop reach proxy), capped at
	// the user count.
	Ball float64
}

// vector returns the feature vector with a leading intercept term.
func (f Features) vector() []float64 {
	return []float64{1, f.K, f.Degree, f.ListLen, f.Ball}
}

// numFeatures is the design-matrix width (intercept included).
const numFeatures = 5

// Plan is the outcome of query planning.
type Plan struct {
	// Alg is the chosen algorithm.
	Alg Algorithm
	// Est maps every considered algorithm to its predicted access
	// count; algorithms that cannot run are absent.
	Est map[Algorithm]float64
	// Calibrated reports whether fitted models (rather than the
	// heuristic) produced the estimates.
	Calibrated bool
}

// Planner plans and executes queries against one engine. Calibration
// mutates the planner, so confine it to setup; Plan and Execute are
// safe for concurrent use afterwards.
type Planner struct {
	e          *core.Engine
	avgDegree  float64
	models     [numAlgorithms][]float64
	calibrated bool
}

// New builds an uncalibrated planner over an engine.
func New(e *core.Engine) (*Planner, error) {
	if e == nil {
		return nil, errors.New("planner: nil engine")
	}
	g := e.Graph()
	avg := 0.0
	if g.NumUsers() > 0 {
		avg = 2 * float64(g.NumEdges()) / float64(g.NumUsers())
	}
	return &Planner{e: e, avgDegree: avg}, nil
}

// FeaturesOf computes the planning features of a query.
func (p *Planner) FeaturesOf(q core.Query) Features {
	g := p.e.Graph()
	deg := 0.0
	if q.Seeker >= 0 && int(q.Seeker) < g.NumUsers() {
		deg = float64(g.Degree(q.Seeker))
	}
	listLen := 0.0
	seen := map[tagstore.TagID]bool{}
	for _, t := range q.Tags {
		if seen[t] || t < 0 || int(t) >= p.e.Store().NumTags() {
			continue
		}
		seen[t] = true
		listLen += float64(len(p.e.Store().GlobalList(t)))
	}
	ball := deg * (1 + p.avgDegree)
	if max := float64(g.NumUsers()); ball > max {
		ball = max
	}
	return Features{K: float64(q.K), Degree: deg, ListLen: listLen, Ball: ball}
}

// available lists the algorithms that can answer the query exactly on
// this engine.
func (p *Planner) available() []Algorithm {
	algs := []Algorithm{SocialMerge, ContextMerge}
	if p.e.HasItemIndex() {
		algs = append(algs, SocialTA)
	}
	if p.e.Beta() == 0 {
		algs = append(algs, GlobalTopK)
	}
	return algs
}

// Plan predicts costs and picks the cheapest available algorithm.
func (p *Planner) Plan(q core.Query) Plan {
	f := p.FeaturesOf(q)
	est := make(map[Algorithm]float64)
	best := SocialMerge
	bestCost := 0.0
	for i, alg := range p.available() {
		var c float64
		if p.calibrated {
			c = dot(p.models[alg], f.vector())
			if c < 1 {
				c = 1 // a fitted model extrapolating below zero is noise
			}
		} else {
			c = p.heuristicCost(alg, f)
		}
		est[alg] = c
		if i == 0 || c < bestCost {
			best, bestCost = alg, c
		}
	}
	return Plan{Alg: best, Est: est, Calibrated: p.calibrated}
}

// heuristicCost is the uncalibrated access-count model. The constants
// encode the qualitative cost structure (documented in DESIGN.md §3);
// Calibrate replaces them with corpus-fitted coefficients.
func (p *Planner) heuristicCost(alg Algorithm, f Features) float64 {
	perUserPostings := 1.0
	if n := float64(p.e.Store().NumUsers()); n > 0 {
		perUserPostings = float64(p.e.Store().NumTriples()) / n
	}
	switch alg {
	case GlobalTopK:
		// ~k sorted rounds over the query lists.
		return 4 * f.K
	case SocialMerge:
		// Settles a k-dependent fraction of the ball; each settle costs
		// the user's per-tag lists plus one sorted round.
		settled := 8 + 2*f.K
		if settled > f.Ball && f.Ball > 0 {
			settled = f.Ball
		}
		return settled * (perUserPostings/4 + 2)
	case ContextMerge:
		// Full ball expansion plus most of the ball's posting mass.
		return f.Ball * (perUserPostings/4 + 2) * 2
	case SocialTA:
		// Full proximity materialization (ball-proportional) plus a few
		// sorted rounds, each costing a tagger-list probe.
		taggersPerItem := 1.0
		if ni := float64(p.e.Store().NumItems()); ni > 0 {
			taggersPerItem = float64(p.e.Store().NumTriples()) / ni
		}
		return f.Ball + (6+2*f.K)*(1+taggersPerItem)
	default:
		return 0
	}
}

// Execute plans the query, runs the chosen algorithm, and returns the
// answer with the plan. All planned algorithms are exact, so the
// answer is the same top-k set whichever is picked.
func (p *Planner) Execute(q core.Query) (core.Answer, Plan, error) {
	return p.ExecuteCtx(nil, q)
}

// ExecuteCtx is Execute with cancellation checkpoints: a cancelled ctx
// aborts the chosen algorithm mid-run with ctx.Err().
func (p *Planner) ExecuteCtx(ctx context.Context, q core.Query) (core.Answer, Plan, error) {
	plan := p.Plan(q)
	ans, err := p.Run(ctx, plan.Alg, q)
	return ans, plan, err
}

// Run executes one specific algorithm of the portfolio, bypassing cost
// prediction — the entry point for callers that planned already or that
// honour a caller-supplied algorithm hint.
func (p *Planner) Run(ctx context.Context, alg Algorithm, q core.Query) (core.Answer, error) {
	opts := core.Options{Ctx: ctx}
	switch alg {
	case SocialMerge:
		return p.e.SocialMerge(q, opts)
	case ContextMerge:
		return p.e.ContextMerge(q, opts)
	case SocialTA:
		return p.e.SocialTA(q, opts)
	case GlobalTopK:
		return p.e.GlobalTopKCtx(ctx, q)
	default:
		return core.Answer{}, fmt.Errorf("planner: unknown algorithm %v", alg)
	}
}

func (p *Planner) run(alg Algorithm, q core.Query) (core.Answer, error) {
	return p.Run(nil, alg, q)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
