package planner

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// Calibrate fits, for every available algorithm, a linear model of
// measured access count over the query features by running the
// calibration workload through each algorithm and solving the
// ridge-regularized normal equations. Subsequent Plans use the fitted
// models instead of the built-in heuristic.
//
// Calibration runs every algorithm on every query, so use a modest
// workload (tens of queries); the Ext-6 experiment shows ~30 queries
// already steer the planner close to the per-query oracle.
func (p *Planner) Calibrate(queries []core.Query) error {
	if len(queries) < numFeatures {
		return fmt.Errorf("planner: %d calibration queries, need at least %d", len(queries), numFeatures)
	}
	for _, alg := range p.available() {
		rows := make([][]float64, 0, len(queries))
		costs := make([]float64, 0, len(queries))
		for _, q := range queries {
			ans, err := p.run(alg, q)
			if err != nil {
				return fmt.Errorf("planner: calibrating %v: %w", alg, err)
			}
			rows = append(rows, p.FeaturesOf(q).vector())
			costs = append(costs, float64(ans.Access.Total()+ans.Access.UsersExpanded))
		}
		coef, err := ridgeFit(rows, costs, 1e-6)
		if err != nil {
			return fmt.Errorf("planner: fitting %v: %w", alg, err)
		}
		p.models[alg] = coef
	}
	p.calibrated = true
	return nil
}

// Calibrated reports whether fitted models are active.
func (p *Planner) Calibrated() bool { return p.calibrated }

// Model returns the fitted coefficient vector for an algorithm
// (intercept first), or nil before calibration.
func (p *Planner) Model(alg Algorithm) []float64 {
	if alg < 0 || alg >= numAlgorithms {
		return nil
	}
	return p.models[alg]
}

// ridgeFit solves min_w ‖Xw − y‖² + λ‖w‖² via the normal equations
// (XᵀX + λI)w = Xᵀy. The tiny ridge term keeps the system
// well-conditioned when features are collinear on small workloads.
func ridgeFit(rows [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(rows) == 0 || len(rows) != len(y) {
		return nil, errors.New("planner: empty or mismatched fit input")
	}
	d := len(rows[0])
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
		ata[i][i] = lambda
	}
	aty := make([]float64, d)
	for r, row := range rows {
		if len(row) != d {
			return nil, errors.New("planner: ragged design matrix")
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * y[r]
		}
	}
	return solve(ata, aty)
}

// solve performs Gaussian elimination with partial pivoting on the
// (symmetric positive definite, thanks to the ridge) system a·x = b.
// a and b are consumed.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// pivot
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("planner: singular normal equations")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// eliminate
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
