package planner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

func testEngine(t testing.TB, beta float64, withItems bool) (*core.Engine, *gen.Dataset) {
	t.Helper()
	p := gen.CorpusParams{
		Name: "plan",
		Graph: gen.GraphParams{
			Kind: gen.BarabasiAlbert, NumUsers: 120, M: 3,
			MinWeight: 0.3, MaxWeight: 1,
		},
		NumItems:       300,
		NumTags:        25,
		TriplesPerUser: 20,
		TagZipfS:       1.1,
		ItemZipfS:      1.1,
		Homophily:      0.4,
	}
	ds, err := gen.Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(ds.Graph, ds.Store, core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      beta,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withItems {
		e.AttachItemIndex(core.BuildItemIndex(ds.Store))
	}
	return e, ds
}

func workload(ds *gen.Dataset, n int, seed int64) []core.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]core.Query, n)
	for i := range qs {
		qs[i] = core.Query{
			Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
			Tags: []tagstore.TagID{
				tagstore.TagID(rng.Intn(ds.Store.NumTags())),
				tagstore.TagID(rng.Intn(ds.Store.NumTags())),
			},
			K: 1 + rng.Intn(20),
		}
	}
	return qs
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x − 3y = −8  →  x = 1, y = 3
	a := [][]float64{{2, 1}, {1, -3}}
	b := []float64{5, -8}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solve = %v, want [1 3]", x)
	}
	// Singular system is rejected.
	if _, err := solve([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestRidgeFitRecoversLinearModel(t *testing.T) {
	// y = 3 + 2·f1 − 0.5·f2 with exact data.
	rng := rand.New(rand.NewSource(9))
	var rows [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		f1, f2 := rng.Float64()*10, rng.Float64()*10
		rows = append(rows, []float64{1, f1, f2})
		y = append(y, 3+2*f1-0.5*f2)
	}
	coef, err := ridgeFit(rows, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-6 {
			t.Fatalf("coef = %v, want %v", coef, want)
		}
	}
}

func TestPlannerValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	e, _ := testEngine(t, 1, false)
	p, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Calibrate(nil); err == nil {
		t.Fatal("empty calibration accepted")
	}
}

func TestAvailabilityRules(t *testing.T) {
	// β > 0 without item index: SocialMerge + ContextMerge only.
	e, _ := testEngine(t, 1, false)
	p, _ := New(e)
	plan := p.Plan(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 5})
	if _, ok := plan.Est[SocialTA]; ok {
		t.Fatal("SocialTA offered without item index")
	}
	if _, ok := plan.Est[GlobalTopK]; ok {
		t.Fatal("GlobalTopK offered with beta > 0")
	}
	if len(plan.Est) != 2 {
		t.Fatalf("estimates = %v", plan.Est)
	}

	// β = 0 with item index: all four, and GlobalTopK must win (it does
	// strictly less work for a globally scored query).
	e0, _ := testEngine(t, 0, true)
	p0, _ := New(e0)
	plan0 := p0.Plan(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 5})
	if len(plan0.Est) != 4 {
		t.Fatalf("estimates = %v", plan0.Est)
	}
	if plan0.Alg != GlobalTopK {
		t.Fatalf("beta 0 plan = %v, want GlobalTopK", plan0.Alg)
	}
}

func TestExecuteMatchesSocialMerge(t *testing.T) {
	e, ds := testEngine(t, 1, true)
	p, _ := New(e)
	for _, q := range workload(ds, 10, 7) {
		ans, plan, err := p.Execute(q)
		if err != nil {
			t.Fatalf("%v: %v", plan.Alg, err)
		}
		if !ans.Exact {
			t.Fatalf("planned %v returned non-exact answer", plan.Alg)
		}
		want, err := e.SocialMerge(q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Results) != len(want.Results) {
			t.Fatalf("planned %v: %d results, want %d", plan.Alg, len(ans.Results), len(want.Results))
		}
		// Same certified set (order may differ under near-ties — compare
		// membership).
		wantSet := make(map[int32]bool, len(want.Results))
		for _, r := range want.Results {
			wantSet[r.Item] = true
		}
		for _, r := range ans.Results {
			if !wantSet[r.Item] {
				t.Fatalf("planned %v returned item %d outside SocialMerge set", plan.Alg, r.Item)
			}
		}
	}
}

func TestCalibrationFitsAndPredictsPositiveCosts(t *testing.T) {
	e, ds := testEngine(t, 1, true)
	p, _ := New(e)
	if err := p.Calibrate(workload(ds, 24, 3)); err != nil {
		t.Fatal(err)
	}
	if !p.Calibrated() {
		t.Fatal("not marked calibrated")
	}
	if p.Model(SocialMerge) == nil || p.Model(SocialTA) == nil {
		t.Fatal("missing fitted models")
	}
	if p.Model(Algorithm(99)) != nil {
		t.Fatal("out-of-range model lookup returned data")
	}
	for _, q := range workload(ds, 10, 4) {
		plan := p.Plan(q)
		if !plan.Calibrated {
			t.Fatal("plan not using calibration")
		}
		for alg, c := range plan.Est {
			if c < 1 || math.IsNaN(c) {
				t.Fatalf("estimate %v = %g", alg, c)
			}
		}
	}
}

// TestCalibratedPlannerNearOracle: after calibration the planner's
// total executed cost over a held-out workload must be within 2× of
// the per-query oracle (the best algorithm chosen with hindsight) —
// and no worse than always running the overall-best single algorithm.
func TestCalibratedPlannerNearOracle(t *testing.T) {
	e, ds := testEngine(t, 1, true)
	p, _ := New(e)
	if err := p.Calibrate(workload(ds, 30, 5)); err != nil {
		t.Fatal(err)
	}
	held := workload(ds, 25, 6)

	algs := []Algorithm{SocialMerge, ContextMerge, SocialTA}
	perAlgTotal := make(map[Algorithm]float64)
	oracle := 0.0
	planned := 0.0
	for _, q := range held {
		best := math.Inf(1)
		costs := make(map[Algorithm]float64, len(algs))
		for _, alg := range algs {
			ans, err := p.run(alg, q)
			if err != nil {
				t.Fatal(err)
			}
			c := float64(ans.Access.Total() + ans.Access.UsersExpanded)
			costs[alg] = c
			perAlgTotal[alg] += c
			if c < best {
				best = c
			}
		}
		oracle += best
		planned += costs[p.Plan(q).Alg]
	}
	bestSingle := math.Inf(1)
	for _, total := range perAlgTotal {
		if total < bestSingle {
			bestSingle = total
		}
	}
	if planned > 2*oracle {
		t.Fatalf("planned cost %.0f > 2× oracle %.0f", planned, oracle)
	}
	if planned > bestSingle*1.15 {
		t.Fatalf("planned cost %.0f worse than best single algorithm %.0f", planned, bestSingle)
	}
	t.Logf("oracle %.0f, planned %.0f, best single %.0f", oracle, planned, bestSingle)
}

func TestFeaturesOf(t *testing.T) {
	e, ds := testEngine(t, 1, false)
	p, _ := New(e)
	q := core.Query{Seeker: 3, Tags: []tagstore.TagID{1, 1, 2}, K: 7}
	f := p.FeaturesOf(q)
	if f.K != 7 {
		t.Fatalf("K = %g", f.K)
	}
	if f.Degree != float64(ds.Graph.Degree(3)) {
		t.Fatalf("Degree = %g, want %d", f.Degree, ds.Graph.Degree(3))
	}
	wantLen := float64(len(ds.Store.GlobalList(1)) + len(ds.Store.GlobalList(2)))
	if f.ListLen != wantLen {
		t.Fatalf("ListLen = %g, want %g (duplicate tags deduped)", f.ListLen, wantLen)
	}
	if f.Ball <= 0 || f.Ball > float64(ds.Graph.NumUsers()) {
		t.Fatalf("Ball = %g", f.Ball)
	}
}
