// Package exec provides concurrent batch query execution with
// per-seeker horizon caching: the expensive part of a social top-k
// query — expanding the seeker's neighbourhood — is computed once per
// seeker and reused across that seeker's queries. This is the serving
// layer a deployment would put in front of the core engine, and the
// second half of the Fig 10 story (materialization pays off when
// seekers repeat). The cache itself is internal/qcache, shared with the
// name-addressed service layer (internal/social).
package exec

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/shard"
	"repro/internal/tagstore"
)

// Config tunes the executor.
type Config struct {
	// Workers is the number of concurrent query workers (≥ 1).
	Workers int
	// CacheSize is the total number of cached seeker horizons across
	// all cache shards (0 disables caching).
	CacheSize int
	// CacheShards partitions the horizon cache into independently
	// locked shards by consistent hashing over the seeker id
	// (0 = DefaultCacheShards).
	CacheShards int
	// CachePolicy tunes cache admission and expiry (see qcache.Policy).
	CachePolicy qcache.Policy
	// MaxHorizonUsers truncates materialized horizons (0 = full
	// horizon). Truncation makes answers for heavy seekers approximate
	// but bounds cache entry size.
	MaxHorizonUsers int
}

// DefaultCacheShards is the default cache shard count (the fleet-wide
// default from internal/shard).
const DefaultCacheShards = shard.DefaultShards

// DefaultConfig returns a sensible serving configuration.
func DefaultConfig() Config {
	return Config{Workers: 4, CacheSize: 256, MaxHorizonUsers: 0}
}

// Stats exposes cache effectiveness counters, aggregated across cache
// shards.
type Stats struct {
	Hits            int64
	Misses          int64
	Invalidations   int64
	Evictions       int64
	Expirations     int64
	AdmissionDenied int64
}

// Executor runs queries against a core engine with sharded horizon
// caching. It is safe for concurrent use. It implements search.Searcher
// at the id level: Do/DoBatch address users and tags by their decimal
// ids.
type Executor struct {
	engine  *core.Engine
	cfg     Config
	caches  *shard.Caches // nil when caching is disabled
	planner *planner.Planner

	// degradeHook mirrors social.Service.SetDegradeHook at the id
	// level: consulted per request after normalization, may downgrade
	// the execution mode in place; returning true marks the response
	// Degraded with its certified score bound.
	degradeHook atomic.Value // func(*search.Request) bool
}

// SetDegradeHook installs (or, with nil, clears) the brownout hook
// consulted once per Do/DoBatch request after normalization. Safe for
// concurrent use with Do.
func (x *Executor) SetDegradeHook(h func(*search.Request) bool) {
	x.degradeHook.Store(h)
}

var _ search.Searcher = (*Executor)(nil)

// New builds an executor over the engine.
func New(engine *core.Engine, cfg Config) (*Executor, error) {
	if engine == nil {
		return nil, fmt.Errorf("exec: nil engine")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("exec: workers %d must be >= 1", cfg.Workers)
	}
	if cfg.CacheSize < 0 || cfg.MaxHorizonUsers < 0 || cfg.CacheShards < 0 {
		return nil, fmt.Errorf("exec: negative cache size, shard count or horizon bound")
	}
	p, err := planner.New(engine)
	if err != nil {
		return nil, err
	}
	x := &Executor{engine: engine, cfg: cfg, planner: p}
	if cfg.CacheSize > 0 {
		caches, err := shard.NewCaches(shard.CacheConfig{
			Shards:   cfg.CacheShards, // 0 = shard.DefaultShards
			Capacity: cfg.CacheSize,
			Policy:   cfg.CachePolicy,
		})
		if err != nil {
			return nil, err
		}
		x.caches = caches
	}
	return x, nil
}

// Stats returns a snapshot of the cache counters aggregated across
// shards.
func (x *Executor) Stats() Stats {
	if x.caches == nil {
		return Stats{}
	}
	s := x.caches.Counters()
	return Stats{
		Hits:            s.Hits,
		Misses:          s.Misses,
		Invalidations:   s.Invalidations,
		Evictions:       s.Evictions,
		Expirations:     s.Expirations,
		AdmissionDenied: s.AdmissionDenied,
	}
}

// ShardStats returns each cache shard's entry count and counters (nil
// when caching is disabled).
func (x *Executor) ShardStats() []shard.Snapshot {
	if x.caches == nil {
		return nil
	}
	return x.caches.PerShard()
}

// horizonFor returns a cached horizon or materializes (and caches)
// one. It reports whether the horizon was a cache hit, the owning
// cache shard, and the generation it is stamped with. noCache skips
// the cache entirely (one-shot materialization); maxAge > 0 tightens
// the TTL for this lookup.
func (x *Executor) horizonFor(ctx context.Context, seeker graph.UserID, noCache bool, maxAge time.Duration) (h *core.SeekerHorizon, hit bool, cshard int, gen uint64, err error) {
	if x.caches == nil || noCache {
		h, err = x.engine.MaterializeHorizonCtx(ctx, seeker, x.cfg.MaxHorizonUsers)
		return h, false, 0, 0, err
	}
	cshard = x.caches.ShardFor(seeker)
	cache := x.caches.Shard(cshard)
	gen = cache.Generation()
	if h, ok := cache.Lookup(seeker, gen, maxAge); ok {
		return h, true, cshard, gen, nil
	}
	// Materialize outside any lock: expansions are the expensive part
	// and must not serialize each other. A concurrent duplicate for the
	// same seeker is possible and harmless (last one wins the slot), and
	// an invalidation racing the expansion voids the insert.
	h, err = x.engine.MaterializeHorizonCtx(ctx, seeker, x.cfg.MaxHorizonUsers)
	if err != nil {
		return nil, false, cshard, gen, err
	}
	cache.Put(seeker, gen, h)
	return h, false, cshard, gen, nil
}

// Query answers one query, reusing the seeker's cached horizon when
// available. Cancellation checkpoints honour opts.Ctx.
func (x *Executor) Query(q core.Query, opts core.Options) (core.Answer, error) {
	if opts.UseNeighborhoods || opts.LandmarkPrune {
		return core.Answer{}, fmt.Errorf("exec: horizon execution excludes UseNeighborhoods/LandmarkPrune")
	}
	h, _, _, _, err := x.horizonFor(opts.Ctx, q.Seeker, false, 0)
	if err != nil {
		return core.Answer{}, err
	}
	return x.engine.SocialMergeWithHorizon(q, h, opts)
}

// Result pairs a batch answer with its originating query index.
type Result struct {
	Index  int
	Answer core.Answer
	Err    error
}

// QueryBatch executes queries concurrently on the configured worker
// pool. Results are returned in input order; individual failures are
// reported per query, not as a batch failure.
func (x *Executor) QueryBatch(queries []core.Query, opts core.Options) []Result {
	results := make([]Result, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := x.cfg.Workers
	if workers > len(queries) {
		workers = len(queries)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ans, err := x.Query(queries[i], opts)
				results[i] = Result{Index: i, Answer: ans, Err: err}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Do answers one request at the id level: Request.Seeker and
// Request.Tags are decimal user/tag ids ("17", ["3", "9"]), and result
// items are decimal item ids. Mode semantics match social.Service.Do —
// auto plans over the engine's portfolio, exact refines scores, approx
// terminates early — all through the horizon cache where applicable.
// Per-query Beta rebuilds an index-free engine view, so SocialTA is
// unavailable under an override.
func (x *Executor) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return x.do(ctx, req, nil)
}

// execBurst carries one batch worker's horizon across a same-seeker run
// of requests when caching is disabled: the first request materializes,
// the rest reuse — one graph pass amortized over the burst.
type execBurst struct {
	eng    *core.Engine
	seeker graph.UserID
	h      *core.SeekerHorizon
}

func (x *Executor) do(ctx context.Context, req search.Request, bst *execBurst) (search.Response, error) {
	if err := req.Normalize(); err != nil {
		return search.Response{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return search.Response{}, err
	}
	ctx, sp := obs.StartSpan(ctx, "exec.execute")
	defer sp.End()
	sp.SetAttr("seeker", req.Seeker)
	degraded := false
	if h, _ := x.degradeHook.Load().(func(*search.Request) bool); h != nil {
		degraded = h(&req)
	}
	seeker, err := strconv.Atoi(req.Seeker)
	if err != nil {
		return search.Response{}, search.WrapInvalid(fmt.Errorf("exec: seeker %q is not a user id: %v", req.Seeker, err))
	}
	tags := make([]tagstore.TagID, len(req.Tags))
	for i, t := range req.Tags {
		id, err := strconv.Atoi(t)
		if err != nil {
			return search.Response{}, search.WrapInvalid(fmt.Errorf("exec: tag %q is not a tag id: %v", t, err))
		}
		tags[i] = tagstore.TagID(id)
	}

	eng, p := x.engine, x.planner
	if req.Beta != nil && *req.Beta != eng.Beta() {
		eng, err = core.NewEngine(eng.Graph(), eng.Store(), core.Config{
			Proximity: eng.ProximityParams(),
			Beta:      *req.Beta,
		})
		if err != nil {
			return search.Response{}, err
		}
		if p, err = planner.New(eng); err != nil {
			return search.Response{}, err
		}
	}

	if req.NoCache {
		bst = nil // NoCache promises a fresh horizon; no burst reuse
	}
	ex := &search.Explain{Mode: req.Mode.String(), Beta: eng.Beta()}
	q := core.Query{Seeker: graph.UserID(seeker), Tags: tags, K: req.K + req.Offset}
	var ans core.Answer
	switch req.Mode {
	case search.ModeExact:
		ex.Algorithm = planner.SocialMerge.String()
		ans, err = x.horizonMerge(ctx, eng, q, req, core.Options{RefineScores: true, Ctx: ctx}, bst, ex)
	case search.ModeApprox:
		ex.Algorithm = planner.SocialMerge.String()
		ans, err = x.horizonMerge(ctx, eng, q, req, core.Options{Ctx: ctx}, bst, ex)
	default: // ModeAuto
		var alg planner.Algorithm
		if req.AlgHint != "" {
			alg, _ = planner.ParseAlgorithm(req.AlgHint) // Normalize vetted the spelling
			if !p.Available(alg) {
				return search.Response{}, search.WrapInvalid(fmt.Errorf("exec: algorithm %s unavailable on this engine (SocialTA needs an item index, GlobalTopK needs beta = 0)", alg))
			}
		} else {
			plan := p.Plan(q)
			alg = plan.Alg
			ex.Planned = true
			ex.Estimates = make(map[string]float64, len(plan.Est))
			for a, est := range plan.Est {
				ex.Estimates[a.String()] = est
			}
		}
		ex.Algorithm = alg.String()
		if alg == planner.SocialMerge {
			ans, err = x.horizonMerge(ctx, eng, q, req, core.Options{Ctx: ctx}, bst, ex)
		} else {
			ans, err = p.Run(ctx, alg, q)
		}
	}
	if err != nil {
		return search.Response{}, err
	}
	ex.Exact = ans.Exact
	ex.UsersSettled = ans.UsersSettled
	ex.SequentialAccesses = ans.Access.Sequential
	ex.RandomAccesses = ans.Access.Random

	named := make([]search.Result, len(ans.Results))
	for i, r := range ans.Results {
		named[i] = search.Result{Item: strconv.Itoa(int(r.Item)), Score: r.Score}
	}
	results := req.Window(named)
	if results == nil {
		results = []search.Result{}
	}
	if n := len(results); n > 0 {
		ex.ScoreBound = results[n-1].Score
	}
	resp := search.Response{Results: results}
	if degraded {
		ex.Degraded = true
		resp.Degraded = true
		resp.ScoreBound = ex.ScoreBound
	}
	if req.Explain {
		resp.Explain = ex
	}
	return resp, nil
}

// horizonMerge runs a SocialMerge-family query through the horizon
// cache, recording cache provenance in ex. With caching disabled, a
// batch worker's burst state stands in for the cache across a
// same-seeker run of requests.
func (x *Executor) horizonMerge(ctx context.Context, eng *core.Engine, q core.Query, req search.Request, opts core.Options, bst *execBurst, ex *search.Explain) (core.Answer, error) {
	if x.caches == nil && bst != nil {
		if bst.h == nil || bst.eng != eng || bst.seeker != q.Seeker {
			h, err := x.engine.MaterializeHorizonCtx(ctx, q.Seeker, x.cfg.MaxHorizonUsers)
			if err != nil {
				return core.Answer{}, err
			}
			bst.eng, bst.seeker, bst.h = eng, q.Seeker, h
		}
		ex.HorizonUsers = bst.h.Size()
		ex.HorizonResidual = bst.h.Residual()
		return eng.SocialMergeWithHorizon(q, bst.h, opts)
	}
	maxAge := time.Duration(req.MaxCacheAgeMS) * time.Millisecond
	h, hit, cshard, gen, err := x.horizonFor(ctx, q.Seeker, req.NoCache, maxAge)
	if err != nil {
		return core.Answer{}, err
	}
	ex.CacheHit = hit
	ex.CacheGeneration = gen
	ex.CacheShard = cshard
	ex.HorizonUsers = h.Size()
	ex.HorizonResidual = h.Residual()
	return eng.SocialMergeWithHorizon(q, h, opts)
}

// DoBatch answers many requests concurrently on the configured worker
// pool, in input order with per-request errors. Requests not yet handed
// to a worker when ctx is cancelled fail with ctx.Err() without
// executing; in-flight requests abort at the engine's next checkpoint.
func (x *Executor) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	// Group request indexes by seeker, preserving first-seen order, so a
	// same-seeker burst runs back-to-back on one worker: the first query
	// pays the horizon expansion, the rest reuse it (through the cache
	// shard, or carried burst state when caching is off).
	groups := make(map[string][]int, len(reqs))
	order := make([]string, 0, len(reqs))
	for i, r := range reqs {
		if _, ok := groups[r.Seeker]; !ok {
			order = append(order, r.Seeker)
		}
		groups[r.Seeker] = append(groups[r.Seeker], i)
	}
	workers := x.cfg.Workers
	if workers > len(order) {
		workers = len(order)
	}
	jobs := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idxs := range jobs {
				var bst execBurst
				for _, i := range idxs {
					if err := ctx.Err(); err != nil {
						out[i] = search.BatchResult{Err: err}
						continue
					}
					resp, err := x.do(ctx, reqs[i], &bst)
					out[i] = search.BatchResult{Response: resp, Err: err}
				}
			}
		}()
	}
dispatch:
	for gi, seeker := range order {
		select {
		case jobs <- groups[seeker]:
		case <-ctx.Done():
			for _, sk := range order[gi:] {
				for _, j := range groups[sk] {
					out[j] = search.BatchResult{Err: ctx.Err()}
				}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// Invalidate drops a seeker's cached horizon (e.g. after their part of
// the network changed). Returns whether an entry was removed.
func (x *Executor) Invalidate(seeker graph.UserID) bool {
	if x.caches == nil {
		return false
	}
	return x.caches.For(seeker).InvalidateSeeker(seeker)
}

// InvalidateEdge drops, across all cache shards, exactly the cached
// horizons a friendship mutation on edge (u, v) could affect — the
// edge-scoped alternative to InvalidateAll for callers that know which
// edges changed. Returns the number of entries dropped.
func (x *Executor) InvalidateEdge(u, v graph.UserID) int {
	if x.caches == nil {
		return 0
	}
	return x.caches.InvalidateEdges([][2]graph.UserID{{u, v}})
}

// InvalidateAll logically empties every cache shard in O(shards) by
// bumping their generations (e.g. after compaction of an overlay whose
// mutated edges are unknown).
func (x *Executor) InvalidateAll() {
	if x.caches != nil {
		x.caches.Invalidate()
	}
}
