// Package exec provides concurrent batch query execution with
// per-seeker horizon caching: the expensive part of a social top-k
// query — expanding the seeker's neighbourhood — is computed once per
// seeker and reused across that seeker's queries. This is the serving
// layer a deployment would put in front of the core engine, and the
// second half of the Fig 10 story (materialization pays off when
// seekers repeat). The cache itself is internal/qcache, shared with the
// name-addressed service layer (internal/social).
package exec

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/qcache"
)

// Config tunes the executor.
type Config struct {
	// Workers is the number of concurrent query workers (≥ 1).
	Workers int
	// CacheSize is the maximum number of cached seeker horizons
	// (0 disables caching).
	CacheSize int
	// MaxHorizonUsers truncates materialized horizons (0 = full
	// horizon). Truncation makes answers for heavy seekers approximate
	// but bounds cache entry size.
	MaxHorizonUsers int
}

// DefaultConfig returns a sensible serving configuration.
func DefaultConfig() Config {
	return Config{Workers: 4, CacheSize: 256, MaxHorizonUsers: 0}
}

// Stats exposes cache effectiveness counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Evictions     int64
}

// Executor runs queries against a core engine with horizon caching.
// It is safe for concurrent use.
type Executor struct {
	engine *core.Engine
	cfg    Config
	cache  *qcache.Cache // nil when caching is disabled
}

// New builds an executor over the engine.
func New(engine *core.Engine, cfg Config) (*Executor, error) {
	if engine == nil {
		return nil, fmt.Errorf("exec: nil engine")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("exec: workers %d must be >= 1", cfg.Workers)
	}
	if cfg.CacheSize < 0 || cfg.MaxHorizonUsers < 0 {
		return nil, fmt.Errorf("exec: negative cache size or horizon bound")
	}
	x := &Executor{engine: engine, cfg: cfg}
	if cfg.CacheSize > 0 {
		cache, err := qcache.New(cfg.CacheSize)
		if err != nil {
			return nil, err
		}
		x.cache = cache
	}
	return x, nil
}

// Stats returns a snapshot of the cache counters.
func (x *Executor) Stats() Stats {
	if x.cache == nil {
		return Stats{}
	}
	s := x.cache.Counters()
	return Stats{Hits: s.Hits, Misses: s.Misses, Invalidations: s.Invalidations, Evictions: s.Evictions}
}

// horizonFor returns a cached horizon or materializes (and caches) one.
func (x *Executor) horizonFor(seeker graph.UserID) (*core.SeekerHorizon, error) {
	if x.cache == nil {
		return x.engine.MaterializeHorizon(seeker, x.cfg.MaxHorizonUsers)
	}
	gen := x.cache.Generation()
	if h, ok := x.cache.Get(seeker, gen); ok {
		return h, nil
	}
	// Materialize outside any lock: expansions are the expensive part
	// and must not serialize each other. A concurrent duplicate for the
	// same seeker is possible and harmless (last one wins the slot), and
	// an InvalidateAll racing the expansion voids the insert.
	h, err := x.engine.MaterializeHorizon(seeker, x.cfg.MaxHorizonUsers)
	if err != nil {
		return nil, err
	}
	x.cache.Put(seeker, gen, h)
	return h, nil
}

// Query answers one query, reusing the seeker's cached horizon when
// available.
func (x *Executor) Query(q core.Query, opts core.Options) (core.Answer, error) {
	if opts.UseNeighborhoods || opts.LandmarkPrune {
		return core.Answer{}, fmt.Errorf("exec: horizon execution excludes UseNeighborhoods/LandmarkPrune")
	}
	h, err := x.horizonFor(q.Seeker)
	if err != nil {
		return core.Answer{}, err
	}
	return x.engine.SocialMergeWithHorizon(q, h, opts)
}

// Result pairs a batch answer with its originating query index.
type Result struct {
	Index  int
	Answer core.Answer
	Err    error
}

// QueryBatch executes queries concurrently on the configured worker
// pool. Results are returned in input order; individual failures are
// reported per query, not as a batch failure.
func (x *Executor) QueryBatch(queries []core.Query, opts core.Options) []Result {
	results := make([]Result, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := x.cfg.Workers
	if workers > len(queries) {
		workers = len(queries)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ans, err := x.Query(queries[i], opts)
				results[i] = Result{Index: i, Answer: ans, Err: err}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Invalidate drops a seeker's cached horizon (e.g. after their part of
// the network changed). Returns whether an entry was removed.
func (x *Executor) Invalidate(seeker graph.UserID) bool {
	if x.cache == nil {
		return false
	}
	return x.cache.InvalidateSeeker(seeker)
}

// InvalidateAll logically empties the cache in O(1) by bumping its
// generation (e.g. after compaction of an overlay).
func (x *Executor) InvalidateAll() {
	if x.cache != nil {
		x.cache.Invalidate()
	}
}
