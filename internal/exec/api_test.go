package exec

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/tagstore"
)

func apiEngine(t *testing.T) *core.Engine {
	t.Helper()
	const users = 30
	gb := graph.NewBuilder(users)
	for i := 0; i < users-1; i++ {
		gb.AddEdge(graph.UserID(i), graph.UserID(i+1), 0.9)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(users, users, 2)
	for i := 0; i < users; i++ {
		tb.Add(graph.UserID(i), tagstore.ItemID(i), 0)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.AttachItemIndex(core.BuildItemIndex(store))
	return e
}

func TestExecutorDoIDLevel(t *testing.T) {
	x, err := New(apiEngine(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	resp, err := x.Do(ctx, search.Request{Seeker: "0", Tags: []string{"0"}, K: 3, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range resp.Results {
		if _, err := strconv.Atoi(r.Item); err != nil {
			t.Fatalf("item %q is not a decimal id", r.Item)
		}
	}
	if resp.Explain == nil || resp.Explain.Algorithm == "" || !resp.Explain.Planned {
		t.Fatalf("explain %+v", resp.Explain)
	}

	// Repeat: cache provenance must flip to a hit.
	resp, err = x.Do(ctx, search.Request{Seeker: "0", Tags: []string{"0"}, K: 3, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Explain.CacheHit || resp.Explain.HorizonUsers == 0 {
		t.Fatalf("second query explain %+v", resp.Explain)
	}

	// SocialTA is available (item index attached) and forceable.
	resp, err = x.Do(ctx, search.Request{Seeker: "0", Tags: []string{"0"}, AlgHint: "SocialTA", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Explain.Algorithm != "SocialTA" || resp.Explain.Planned {
		t.Fatalf("hinted explain %+v", resp.Explain)
	}

	// Non-numeric ids are rejected.
	if _, err := x.Do(ctx, search.Request{Seeker: "alice", Tags: []string{"0"}}); err == nil {
		t.Fatal("non-numeric seeker accepted")
	}
	if _, err := x.Do(ctx, search.Request{Seeker: "0", Tags: []string{"pizza"}}); err == nil {
		t.Fatal("non-numeric tag accepted")
	}
}

func TestExecutorDoBatchCancellation(t *testing.T) {
	x, err := New(apiEngine(t), Config{Workers: 1, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]search.Request, 16)
	for i := range reqs {
		reqs[i] = search.Request{Seeker: fmt.Sprint(i), Tags: []string{"0"}, K: 2}
	}
	for i, br := range x.DoBatch(ctx, reqs) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, br.Err)
		}
	}
}
