package exec

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

func testEngine(t testing.TB) (*core.Engine, *gen.Dataset) {
	t.Helper()
	ds, err := gen.Generate(gen.DeliciousParams().Scale(0.06), 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      1,
	}
	e, err := core.NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func testQueries(t testing.TB, ds *gen.Dataset, n int) []core.Query {
	t.Helper()
	wp := gen.DefaultWorkloadParams()
	wp.NumQueries = n
	specs, err := gen.Workload(ds, wp, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]core.Query, len(specs))
	for i, s := range specs {
		qs[i] = core.Query{Seeker: s.Seeker, Tags: s.Tags, K: 5}
	}
	return qs
}

func TestNewValidation(t *testing.T) {
	e, _ := testEngine(t)
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(e, Config{Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := New(e, Config{Workers: 1, CacheSize: -1}); err == nil {
		t.Fatal("negative cache accepted")
	}
}

func TestQueryMatchesDirectExecution(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range testQueries(t, ds, 12) {
		got, err := x.Query(q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.SocialMerge(q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("cached execution differs for seeker %d: %v vs %v",
				q.Seeker, got.Results, want.Results)
		}
		if got.Exact != want.Exact {
			t.Fatalf("certification differs for seeker %d", q.Seeker)
		}
	}
}

func TestCacheHitsAccumulate(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(t, ds, 4)
	for i := 0; i < 3; i++ {
		for _, q := range qs {
			if _, err := x.Query(q, core.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := x.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", st)
	}
	// distinct seekers ≤ 4, so misses ≤ 4 and the rest are hits
	if st.Misses > 4 {
		t.Fatalf("misses = %d, want <= 4 distinct seekers", st.Misses)
	}
	if st.Hits+st.Misses != int64(3*len(qs)) {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 3*len(qs))
	}
}

func TestCacheEviction(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, Config{Workers: 1, CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// query three distinct seekers → one eviction
	seekers := map[graph.UserID]bool{}
	for _, q := range testQueries(t, ds, 30) {
		if len(seekers) == 3 {
			break
		}
		if seekers[q.Seeker] {
			continue
		}
		seekers[q.Seeker] = true
		if _, err := x.Query(q, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seekers) < 3 {
		t.Skip("workload produced too few distinct seekers")
	}
	if st := x.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, Config{Workers: 1, CacheSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	q := testQueries(t, ds, 1)[0]
	for i := 0; i < 3; i++ {
		if _, err := x.Query(q, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := x.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache recorded stats: %+v", st)
	}
}

func TestQueryBatchOrderAndEquivalence(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, Config{Workers: 4, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(t, ds, 16)
	results := x.QueryBatch(qs, core.Options{})
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		want, err := e.SocialMerge(qs[i], core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Answer.Results, want.Results) {
			t.Fatalf("batch result %d differs", i)
		}
	}
}

func TestQueryBatchReportsPerQueryErrors(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, Config{Workers: 2, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(t, ds, 2)
	qs[1].K = 0 // invalid
	results := x.QueryBatch(qs, core.Options{})
	if results[0].Err != nil {
		t.Fatalf("valid query failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid query did not report an error")
	}
}

func TestQueryRejectsIndexOptions(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := testQueries(t, ds, 1)[0]
	if _, err := x.Query(q, core.Options{UseNeighborhoods: true}); err == nil {
		t.Fatal("UseNeighborhoods accepted")
	}
	if _, err := x.Query(q, core.Options{LandmarkPrune: true}); err == nil {
		t.Fatal("LandmarkPrune accepted")
	}
}

func TestInvalidate(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := testQueries(t, ds, 1)[0]
	if _, err := x.Query(q, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if !x.Invalidate(q.Seeker) {
		t.Fatal("cached seeker not invalidated")
	}
	if x.Invalidate(q.Seeker) {
		t.Fatal("double invalidation reported success")
	}
	if _, err := x.Query(q, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 after invalidation", st.Misses)
	}
	x.InvalidateAll()
	if _, err := x.Query(q, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 after InvalidateAll", st.Misses)
	}
}

func TestTruncatedHorizonApproximate(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, Config{Workers: 1, CacheSize: 8, MaxHorizonUsers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A hub seeker with a 2-user horizon cannot generally certify k=5.
	hub := ds.Graph.DegreePercentileUser(99)
	q := core.Query{Seeker: hub, Tags: []tagstore.TagID{0, 1}, K: 5}
	ans, err := x.Query(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.UsersSettled > 2 {
		t.Fatalf("settled %d users with a horizon of 2", ans.UsersSettled)
	}
	_ = ans.Exact // may or may not certify; the bound above is the contract
}

func TestHorizonAccessors(t *testing.T) {
	e, _ := testEngine(t)
	h, err := e.MaterializeHorizon(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seeker() != 0 {
		t.Fatalf("Seeker = %d", h.Seeker())
	}
	if h.Size() == 0 || h.Size() > 3 {
		t.Fatalf("Size = %d, want in (0,3]", h.Size())
	}
	if h.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
	// mismatched seeker is rejected
	if _, err := e.SocialMergeWithHorizon(core.Query{Seeker: 1, Tags: []tagstore.TagID{0}, K: 1}, h, core.Options{}); err == nil {
		t.Fatal("horizon/seeker mismatch accepted")
	}
	if _, err := e.SocialMergeWithHorizon(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}, nil, core.Options{}); err == nil {
		t.Fatal("nil horizon accepted")
	}
}

func TestInvalidateEdgeScopedAtExecutor(t *testing.T) {
	e, ds := testEngine(t)
	x, err := New(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(t, ds, 4)
	for _, q := range qs {
		if _, err := x.Query(q, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	target := qs[0].Seeker
	// The seeker is always a member of its own horizon, so an edge at
	// the seeker must drop (at least) its entry.
	before := x.Stats()
	if n := x.InvalidateEdge(target, target+1); n == 0 {
		t.Fatal("edge at a cached seeker dropped nothing")
	}
	after := x.Stats()
	if after.Invalidations <= before.Invalidations {
		t.Fatalf("invalidations did not advance: %+v -> %+v", before, after)
	}
	// The seeker's next query re-materializes (a miss).
	misses := after.Misses
	if _, err := x.Query(qs[0], core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := x.Stats().Misses; got != misses+1 {
		t.Fatalf("misses = %d after invalidated seeker re-queried, want %d", got, misses+1)
	}
	if st := x.ShardStats(); len(st) != DefaultCacheShards {
		t.Fatalf("%d shard snapshots, want %d", len(st), DefaultCacheShards)
	}
}
