package durable

import (
	"fmt"
	"sync"
	"testing"
)

// TestDurableCursorSurvivesRestart exercises cursor persistence under
// the race detector: stamped records applied by a writer goroutine race
// with concurrent cursor/stats reads, then the service restarts and the
// cursor must resume exactly where the log left off — the replica asks
// the fleet log for the suffix after its cursor instead of restreaming
// history from LSN 1.
func TestDurableCursorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = svc.AppliedLSN()
			_ = svc.Stats()
		}
	}()
	for i := 1; i <= n; i++ {
		lsn := uint64(i)
		var err error
		if i%2 == 0 {
			err = svc.TagAt(lsn, fmt.Sprintf("u%d", i%17), fmt.Sprintf("item%d", i%5), "tag")
		} else {
			err = svc.BefriendAt(lsn, fmt.Sprintf("u%d", i%17), fmt.Sprintf("v%d", i%13), 0.5)
		}
		if err != nil {
			t.Fatalf("stamped apply lsn %d: %v", lsn, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := re.AppliedLSN(); got != n {
		t.Fatalf("reopened cursor = %d, want %d", got, n)
	}
	// Resuming means a redelivery of the suffix head is deduped, and the
	// true next record is accepted.
	if err := re.TagAt(n, "u0", "item0", "tag"); err != nil {
		t.Fatalf("redelivered record after restart: %v", err)
	}
	if err := re.BefriendAt(n+1, "u1", "v2", 0.5); err != nil {
		t.Fatalf("next record after restart: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCursorSurvivesCheckpointTruncation pins the manifest half
// of cursor durability: a checkpoint folds state into a snapshot and
// lets the log layer truncate the stamped records, so the cursor must
// ride in the manifest — a reopen after checkpoint (replaying zero or
// few records) still resumes from the latest stamped LSN.
func TestDurableCursorSurvivesCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := svc.BefriendAt(uint64(i), fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().RecoveredRecords; got != 0 {
		t.Fatalf("recovered %d records after checkpoint, want 0 (snapshot covers them)", got)
	}
	if got := re.AppliedLSN(); got != 50 {
		t.Fatalf("reopened cursor = %d, want 50 (carried by the manifest)", got)
	}
	if err := re.BefriendAt(51, "x", "y", 0.5); err != nil {
		t.Fatalf("next record after checkpointed restart: %v", err)
	}
}
