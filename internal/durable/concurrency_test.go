package durable

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/wal"
)

// TestConcurrentWritersAndReaders hammers the durable service from
// parallel writers and readers; afterwards, recovery must reproduce
// the exact same answers. Run under -race this also proves the
// locking discipline.
func TestConcurrentWritersAndReaders(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Sync = wal.SyncManual // keep the test fast; Sync before close
	cfg.CheckpointEvery = 50
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-create the universe so readers never race name creation.
	for i := 0; i < 8; i++ {
		if err := s.Tag(fmt.Sprintf("u%d", i), fmt.Sprintf("i%d", i), "seed"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				u := fmt.Sprintf("u%d", (id+i)%8)
				v := fmt.Sprintf("u%d", (id+i+1)%8)
				if i%3 == 0 {
					if err := s.Befriend(u, v, 0.5); err != nil {
						errs <- err
						return
					}
				} else if err := s.Tag(u, fmt.Sprintf("i%d", i%20), fmt.Sprintf("t%d", id)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := s.Search(fmt.Sprintf("u%d", id), []string{"seed"}, 5); err != nil {
					errs <- fmt.Errorf("reader %d: %w", id, err)
					return
				}
				_ = s.Stats()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Capture answers, crash, recover, compare.
	type key struct{ seeker, tag string }
	answers := map[key][]social_ResultLike{}
	for i := 0; i < 8; i++ {
		for _, tag := range []string{"seed", "t0", "t1", "t2", "t3"} {
			res, err := s.Search(fmt.Sprintf("u%d", i), []string{tag}, 5)
			if err != nil {
				continue
			}
			k := key{fmt.Sprintf("u%d", i), tag}
			for _, r := range res {
				answers[k] = append(answers[k], social_ResultLike{r.Item, r.Score})
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range answers {
		res, err := s2.Search(k.seeker, []string{k.tag}, 5)
		if err != nil {
			t.Fatalf("recovered Search(%s,%s): %v", k.seeker, k.tag, err)
		}
		if len(res) != len(want) {
			t.Fatalf("Search(%s,%s): %d results, want %d", k.seeker, k.tag, len(res), len(want))
		}
		for i, r := range res {
			if r.Item != want[i].item || r.Score != want[i].score {
				t.Fatalf("Search(%s,%s)[%d] = {%s %g}, want {%s %g}",
					k.seeker, k.tag, i, r.Item, r.Score, want[i].item, want[i].score)
			}
		}
	}
}

type social_ResultLike struct {
	item  string
	score float64
}

// TestBrokenServiceRefusesWrites exercises the ErrBroken latch: after
// a forced internal apply failure the service fails closed.
func TestBrokenServiceRefusesWrites(t *testing.T) {
	s, err := Open(t.TempDir(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.mu.Lock()
	s.broken = true
	s.mu.Unlock()
	if err := s.Tag("a", "b", "c"); err != ErrBroken {
		t.Fatalf("Tag on broken service: %v, want ErrBroken", err)
	}
	if err := s.Checkpoint(); err != ErrBroken {
		t.Fatalf("Checkpoint on broken service: %v, want ErrBroken", err)
	}
}
