package durable

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/social"
	"repro/internal/wal"
)

// seedMutations drives a small deterministic workload into any service
// exposing the mutation API.
type mutator interface {
	Befriend(a, b string, weight float64) error
	Tag(user, item, tag string) error
}

func seedMutations(t *testing.T, m mutator) {
	t.Helper()
	steps := []func() error{
		func() error { return m.Befriend("alice", "bob", 0.9) },
		func() error { return m.Befriend("bob", "carol", 0.8) },
		func() error { return m.Befriend("alice", "dave", 0.5) },
		func() error { return m.Tag("bob", "luigis", "pizza") },
		func() error { return m.Tag("bob", "luigis", "italian") },
		func() error { return m.Tag("carol", "marios", "pizza") },
		func() error { return m.Tag("dave", "sushiko", "sushi") },
		func() error { return m.Tag("dave", "marios", "pizza") },
		func() error { return m.Tag("alice", "sushiko", "sushi") },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("seed step %d: %v", i, err)
		}
	}
}

func searchNames(t *testing.T, s *Service, seeker string, tags []string, k int) []string {
	t.Helper()
	res, err := s.Search(seeker, tags, k)
	if err != nil {
		t.Fatalf("Search(%s,%v): %v", seeker, tags, err)
	}
	names := make([]string, len(res))
	for i, r := range res {
		names[i] = r.Item
	}
	return names
}

func TestOpenEmptyAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Users != 0 || got.RecoveredRecords != 0 {
		t.Fatalf("fresh stats = %+v", got)
	}
	seedMutations(t, s)
	// marios accumulates two social paths (carol 0.26 + dave 0.30), which
	// beats bob's luigis (0.54) under the default α = 0.6 damping.
	want := searchNames(t, s, "alice", []string{"pizza"}, 3)
	if len(want) != 2 || want[0] != "marios" || want[1] != "luigis" {
		t.Fatalf("pre-crash search = %v, want [marios luigis]", want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: pure log replay, no snapshot yet.
	s2, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().RecoveredRecords; got != 9 {
		t.Fatalf("recovered %d records, want 9", got)
	}
	if got := searchNames(t, s2, "alice", []string{"pizza"}, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery search = %v, want %v", got, want)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.SegmentBytes = 256 // force several segments
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seedMutations(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotBarrier != 10 {
		t.Fatalf("barrier = %d, want 10 (nine records folded)", st.SnapshotBarrier)
	}
	if st.LogSegments != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", st.LogSegments)
	}
	// Post-checkpoint mutations land in the fresh log tail.
	if err := s.Tag("alice", "marios", "pizza"); err != nil {
		t.Fatal(err)
	}
	want := searchNames(t, s, "alice", []string{"pizza"}, 3)
	s.Close()

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().RecoveredRecords; got != 1 {
		t.Fatalf("recovered %d records after checkpoint, want 1 (only the tail)", got)
	}
	if got := searchNames(t, s2, "alice", []string{"pizza"}, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-checkpoint recovery = %v, want %v", got, want)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 4
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seedMutations(t, s) // 9 mutations → 2 auto-checkpoints at 4 and 8
	st := s.Stats()
	if st.SnapshotBarrier == 0 || st.WritesSinceCheckpoint != 1 {
		t.Fatalf("auto-checkpoint did not fire as expected: %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), snapshotPrefix) {
			snaps++
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leftover temp dir %s", e.Name())
		}
	}
	if snaps != 1 {
		t.Fatalf("found %d snapshot dirs, want exactly 1 (old ones cleaned)", snaps)
	}
}

func TestTornTailLosesOnlyLastRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedMutations(t, s)
	s.Close()

	// Simulate a torn write: chop bytes off the last wal segment.
	walDir := filepath.Join(dir, walDirName)
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		segs = append(segs, filepath.Join(walDir, e.Name()))
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-2); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.Stats().RecoveredRecords; got != 8 {
		t.Fatalf("recovered %d records, want 8 (final record torn)", got)
	}
	// The torn record was alice tagging sushiko; the pizza ranking is
	// untouched by its loss.
	if got := searchNames(t, s2, "alice", []string{"pizza"}, 2); !reflect.DeepEqual(got, []string{"marios", "luigis"}) {
		t.Fatalf("search after torn-tail recovery = %v, want [marios luigis]", got)
	}
}

func TestManifestPointsAtMissingSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedMutations(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Damage: remove the snapshot dir but keep MANIFEST.
	barrier := uint64(10)
	if err := os.RemoveAll(filepath.Join(dir, snapshotDirName(barrier))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DefaultConfig()); err == nil {
		t.Fatal("Open succeeded with MANIFEST pointing at a missing snapshot")
	}
}

func TestCorruptSnapshotIndexRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedMutations(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, snapshotDirName(10), "data.frnd")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DefaultConfig()); err == nil {
		t.Fatal("Open accepted a corrupt snapshot index")
	}
}

func TestValidationRejectsBadInput(t *testing.T) {
	s, err := Open(t.TempDir(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []error{
		s.Befriend("", "bob", 0.5),
		s.Befriend("alice", "bob", 0),
		s.Befriend("alice", "bob", 1.5),
		s.Befriend("alice", "alice", 0.5),
		s.Befriend("a\nb", "bob", 0.5),
		s.Tag("", "item", "tag"),
		s.Tag("user", "it\rem", "tag"),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: invalid mutation accepted", i)
		}
	}
	// Nothing may have reached the log.
	if got := s.Stats().WritesSinceCheckpoint; got != 0 {
		t.Fatalf("invalid mutations were logged: %d writes", got)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	a, b, w, err := DecodeBefriend(EncodeBefriend("alice", "bob", 0.75))
	if err != nil || a != "alice" || b != "bob" || w != 0.75 {
		t.Fatalf("befriend round trip = %q %q %g %v", a, b, w, err)
	}
	u, i, tg, err := DecodeTag(EncodeTag("user", "an item with spaces", "tag"))
	if err != nil || u != "user" || i != "an item with spaces" || tg != "tag" {
		t.Fatalf("tag round trip = %q %q %q %v", u, i, tg, err)
	}
	// Truncated and trailing-garbage payloads must be rejected.
	good := EncodeTag("u", "i", "t")
	for cut := 0; cut < len(good); cut++ {
		if _, _, _, err := DecodeTag(good[:cut]); err == nil {
			t.Errorf("DecodeTag accepted %d-byte prefix", cut)
		}
	}
	if _, _, _, err := DecodeTag(append(good, 0)); err == nil {
		t.Error("DecodeTag accepted trailing garbage")
	}
	bf := EncodeBefriend("a", "b", 0.5)
	for cut := 0; cut < len(bf); cut++ {
		if _, _, _, err := DecodeBefriend(bf[:cut]); err == nil {
			t.Errorf("DecodeBefriend accepted %d-byte prefix", cut)
		}
	}
}

// TestRandomizedCrashRecovery is the package's central property: for a
// random workload with a crash (reopen) at a random point and random
// checkpoint cadence, the recovered service must answer every seeker's
// query exactly like an in-memory reference that saw the same
// acknowledged mutations.
func TestRandomizedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized recovery is not short")
	}
	rng := rand.New(rand.NewSource(1))
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}
	items := []string{"i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9"}
	tags := []string{"t0", "t1", "t2"}

	for trial := 0; trial < 6; trial++ {
		dir := t.TempDir()
		cfg := DefaultConfig()
		cfg.CheckpointEvery = 1 + rng.Intn(20)
		cfg.SegmentBytes = 512

		ref, err := social.NewService(cfg.Service)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}

		nOps := 30 + rng.Intn(60)
		crashAt := rng.Intn(nOps)
		for op := 0; op < nOps; op++ {
			if op == crashAt {
				// "Crash": drop the handle without checkpointing. Close
				// only syncs (which SyncAlways already did per-append).
				s.Close()
				s, err = Open(dir, cfg)
				if err != nil {
					t.Fatalf("trial %d: reopen at op %d: %v", trial, op, err)
				}
			}
			if rng.Intn(3) == 0 {
				a, b := users[rng.Intn(len(users))], users[rng.Intn(len(users))]
				if a == b {
					continue
				}
				w := 0.1 + 0.9*rng.Float64()
				if err := s.Befriend(a, b, w); err != nil {
					t.Fatal(err)
				}
				if err := ref.Befriend(a, b, w); err != nil {
					t.Fatal(err)
				}
			} else {
				u := users[rng.Intn(len(users))]
				it := items[rng.Intn(len(items))]
				tg := tags[rng.Intn(len(tags))]
				if err := s.Tag(u, it, tg); err != nil {
					t.Fatal(err)
				}
				if err := ref.Tag(u, it, tg); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Final crash+recover, then compare every (seeker, tag) query.
		s.Close()
		s, err = Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, seeker := range ref.Users() {
			for _, tg := range tags {
				want, err := ref.Search(seeker, []string{tg}, 5)
				if err != nil {
					continue // tag not yet known to the reference
				}
				got, err := s.Search(seeker, []string{tg}, 5)
				if err != nil {
					t.Fatalf("trial %d: recovered Search(%s,%s): %v", trial, seeker, tg, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: Search(%s,%s) diverged:\n got %v\nwant %v",
						trial, seeker, tg, got, want)
				}
			}
		}
		s.Close()
	}
}

func TestSyncManualGroupCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Sync = wal.SyncManual
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seedMutations(t, s)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().RecoveredRecords; got != 9 {
		t.Fatalf("recovered %d, want 9", got)
	}
}

func ExampleService() {
	dir, _ := os.MkdirTemp("", "durable-example")
	defer os.RemoveAll(dir)

	svc, _ := Open(dir, DefaultConfig())
	svc.Befriend("alice", "bob", 0.9)
	svc.Tag("bob", "luigis", "pizza")
	svc.Close()

	// Reopen: state survives the restart.
	svc2, _ := Open(dir, DefaultConfig())
	defer svc2.Close()
	res, _ := svc2.Search("alice", []string{"pizza"}, 1)
	fmt.Println(res[0].Item)
	// Output: luigis
}

// TestSearchBatchSeesAcknowledgedWrites: batch reads honour the durable
// read contract (pending mutations folded in first), report errors per
// query, and agree with sequential Search.
func TestSearchBatchSeesAcknowledgedWrites(t *testing.T) {
	s, err := Open(t.TempDir(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seedMutations(t, s)
	out := s.SearchBatch([]social.BatchQuery{
		{Seeker: "alice", Tags: []string{"pizza"}, K: 3},
		{Seeker: "nobody", Tags: []string{"pizza"}, K: 3},
		{Seeker: "alice", Tags: []string{"sushi"}, K: 2},
	})
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good queries failed: %+v", out)
	}
	if out[1].Err == nil {
		t.Fatal("unknown seeker did not fail")
	}
	want := searchNames(t, s, "alice", []string{"pizza"}, 3)
	got := make([]string, len(out[0].Results))
	for i, r := range out[0].Results {
		got[i] = r.Item
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("batch %v != sequential %v", got, want)
	}
	// The seeker cache behind the batch path surfaces in Stats.
	if st := s.Stats(); st.SeekerCache.Hits+st.SeekerCache.Misses == 0 {
		t.Fatalf("no cache traffic recorded: %+v", st.SeekerCache)
	}
}
