package durable

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Log record payload encodings. Strings are uvarint-length-prefixed;
// floats are IEEE-754 bits little-endian. Record framing, checksums and
// ordering are the log layer's job; these payloads only need to be
// self-describing enough to replay. The codec is exported because the
// fleet replication log (internal/fleet) appends and replays the same
// record types.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return "", nil, fmt.Errorf("durable: bad string length prefix")
	}
	buf = buf[used:]
	if uint64(len(buf)) < n {
		return "", nil, fmt.Errorf("durable: string length %d exceeds remaining %d bytes", n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

func EncodeBefriend(a, b string, weight float64) []byte {
	buf := make([]byte, 0, len(a)+len(b)+2+8)
	buf = appendString(buf, a)
	buf = appendString(buf, b)
	var wb [8]byte
	binary.LittleEndian.PutUint64(wb[:], math.Float64bits(weight))
	return append(buf, wb[:]...)
}

func DecodeBefriend(buf []byte) (a, b string, weight float64, err error) {
	a, buf, err = readString(buf)
	if err != nil {
		return "", "", 0, err
	}
	b, buf, err = readString(buf)
	if err != nil {
		return "", "", 0, err
	}
	if len(buf) != 8 {
		return "", "", 0, fmt.Errorf("durable: befriend record has %d trailing bytes, want 8", len(buf))
	}
	weight = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	if weight <= 0 || weight > 1 || math.IsNaN(weight) {
		return "", "", 0, fmt.Errorf("durable: befriend record weight %g outside (0,1]", weight)
	}
	return a, b, weight, nil
}

// EncodeBefriendAt encodes a RecBefriendAt record: a befriend payload
// prefixed with the fleet replication log LSN it was stamped with. One
// record carries both so the mutation and its cursor advance are
// crash-atomic — two separate appends could tear between them and
// double-apply a non-idempotent mutation on replay.
func EncodeBefriendAt(lsn uint64, a, b string, weight float64) []byte {
	buf := make([]byte, 0, 10+len(a)+len(b)+2+8)
	buf = binary.AppendUvarint(buf, lsn)
	return append(buf, EncodeBefriend(a, b, weight)...)
}

// DecodeBefriendAt decodes a RecBefriendAt record payload.
func DecodeBefriendAt(buf []byte) (lsn uint64, a, b string, weight float64, err error) {
	lsn, used := binary.Uvarint(buf)
	if used <= 0 {
		return 0, "", "", 0, fmt.Errorf("durable: bad lsn varint in stamped befriend record")
	}
	if lsn == 0 {
		return 0, "", "", 0, fmt.Errorf("durable: stamped befriend record with lsn 0")
	}
	a, b, weight, err = DecodeBefriend(buf[used:])
	return lsn, a, b, weight, err
}

// EncodeTagAt encodes a RecTagAt record: a tag payload prefixed with
// its fleet replication log LSN (see EncodeBefriendAt for why the LSN
// rides inside the record).
func EncodeTagAt(lsn uint64, user, item, tag string) []byte {
	buf := make([]byte, 0, 10+len(user)+len(item)+len(tag)+3)
	buf = binary.AppendUvarint(buf, lsn)
	return append(buf, EncodeTag(user, item, tag)...)
}

// DecodeTagAt decodes a RecTagAt record payload.
func DecodeTagAt(buf []byte) (lsn uint64, user, item, tag string, err error) {
	lsn, used := binary.Uvarint(buf)
	if used <= 0 {
		return 0, "", "", "", fmt.Errorf("durable: bad lsn varint in stamped tag record")
	}
	if lsn == 0 {
		return 0, "", "", "", fmt.Errorf("durable: stamped tag record with lsn 0")
	}
	user, item, tag, err = DecodeTag(buf[used:])
	return lsn, user, item, tag, err
}

func EncodeTag(user, item, tag string) []byte {
	buf := make([]byte, 0, len(user)+len(item)+len(tag)+3)
	buf = appendString(buf, user)
	buf = appendString(buf, item)
	return appendString(buf, tag)
}

// EncodeTerm encodes a RecTerm leadership-change record: the new term
// and the id of the leader elected for it.
func EncodeTerm(term uint64, leader string) []byte {
	buf := make([]byte, 0, 10+len(leader)+1)
	buf = binary.AppendUvarint(buf, term)
	return appendString(buf, leader)
}

// DecodeTerm decodes a RecTerm record payload.
func DecodeTerm(buf []byte) (term uint64, leader string, err error) {
	term, used := binary.Uvarint(buf)
	if used <= 0 {
		return 0, "", fmt.Errorf("durable: bad term varint in term record")
	}
	leader, buf, err = readString(buf[used:])
	if err != nil {
		return 0, "", err
	}
	if len(buf) != 0 {
		return 0, "", fmt.Errorf("durable: term record has %d trailing bytes", len(buf))
	}
	return term, leader, nil
}

func DecodeTag(buf []byte) (user, item, tag string, err error) {
	user, buf, err = readString(buf)
	if err != nil {
		return "", "", "", err
	}
	item, buf, err = readString(buf)
	if err != nil {
		return "", "", "", err
	}
	tag, buf, err = readString(buf)
	if err != nil {
		return "", "", "", err
	}
	if len(buf) != 0 {
		return "", "", "", fmt.Errorf("durable: tag record has %d trailing bytes", len(buf))
	}
	return user, item, tag, nil
}
