// Package durable makes the mutable social tagging service survive
// process crashes: every mutation is appended to a write-ahead log
// (internal/wal) before it is applied, and checkpoints periodically
// fold the state into an atomic on-disk snapshot (the internal/index
// binary format plus the vocabulary files) so the log stays short.
//
// Directory layout under the service root:
//
//	wal/                     segmented write-ahead log
//	snapshot-<lsn>/          data.frnd + users.txt/items.txt/tags.txt
//	MANIFEST                 points at the live snapshot (atomic rename)
//
// Recovery contract. Open loads the snapshot named by MANIFEST (or
// starts empty), then replays every log record with LSN ≥ the
// snapshot's barrier. Under wal.SyncAlways every acknowledged mutation
// survives any crash; a torn tail (the unacknowledged final record) is
// discarded by the log layer. Checkpointing is crash-safe at every
// step: the snapshot directory appears atomically via rename, MANIFEST
// flips atomically afterwards, and log truncation runs last — a crash
// between any two steps leaves a state Open still recovers exactly.
package durable

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/social"
	"repro/internal/tagstore"
	"repro/internal/vocab"
	"repro/internal/wal"
)

// Record types used in the write-ahead log. Exported because the fleet
// replication log (internal/fleet) reuses the exact record format: one
// codec, one framing, whether the log backs a single process's
// crash-safety or a fleet's replica catch-up.
const (
	RecBefriend wal.Type = 1
	RecTag      wal.Type = 2
	// RecTerm marks a leadership change in the quorum-replicated fleet
	// log (internal/quorum): the record's payload names the term and the
	// elected leader, and every record after it up to the next RecTerm
	// was appended under that leadership. It never appears in a single
	// process's crash-safety log; replicas skip it with a cursor
	// advance (SkipLSN), never an apply.
	RecTerm wal.Type = 3
	// RecBefriendAt / RecTagAt are the LSN-stamped variants a durable
	// REPLICA writes to its own crash-safety log when a mutation arrives
	// through the fleet replication stream: the payload carries the
	// fleet LSN alongside the mutation, so replay restores both the
	// state and the replication cursor — a restarted durable replica
	// resumes the stream from its cursor instead of restreaming the
	// fleet log from the beginning. They never appear in the fleet log
	// itself (the framing there stamps LSNs).
	RecBefriendAt wal.Type = 4
	RecTagAt      wal.Type = 5
)

const (
	manifestName   = "MANIFEST"
	snapshotPrefix = "snapshot-"
	walDirName     = "wal"
)

// Config tunes a durable Service.
type Config struct {
	// Service configures the wrapped in-memory service.
	Service social.ServiceConfig
	// CheckpointEvery takes a checkpoint after this many mutations
	// (0 disables automatic checkpoints; call Checkpoint explicitly).
	CheckpointEvery int
	// Sync selects the log's fsync policy. The default (wal.SyncAlways)
	// makes every acknowledged mutation durable; wal.SyncManual trades
	// the tail for group-commit throughput.
	Sync wal.SyncPolicy
	// SegmentBytes overrides the log's segment rotation threshold
	// (0 = the log's default).
	SegmentBytes int64
}

// DefaultConfig checkpoints every 4096 mutations with full sync.
func DefaultConfig() Config {
	return Config{
		Service:         social.DefaultServiceConfig(),
		CheckpointEvery: 4096,
		Sync:            wal.SyncAlways,
	}
}

// ErrBroken is returned once a write failed mid-sequence, leaving the
// in-memory state possibly ahead of or behind the log; reopen the
// directory to recover to a consistent state.
var ErrBroken = errors.New("durable: service broken by earlier write failure; reopen to recover")

// Service is a crash-safe social.Service. It is safe for concurrent
// use.
type Service struct {
	mu     sync.Mutex
	dir    string
	cfg    Config
	svc    *social.Service
	log    *wal.Log
	writes int
	broken bool

	// recovered statistics from the last Open, for observability
	recoveredRecords int
	snapshotBarrier  uint64
}

// Open recovers (or initializes) a durable service rooted at dir.
func Open(dir string, cfg Config) (*Service, error) {
	if cfg.Service.IsZero() {
		cfg.Service = social.DefaultServiceConfig()
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("durable: negative CheckpointEvery")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	barrier, cursor, snapDir, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	var svc *social.Service
	if snapDir == "" {
		svc, err = social.NewService(cfg.Service)
	} else {
		svc, err = loadSnapshot(filepath.Join(dir, snapDir), cfg.Service)
	}
	if err != nil {
		return nil, err
	}
	// The snapshot's state already covers the fleet stream up to the
	// cursor the manifest recorded; stamped records replayed below may
	// advance it further.
	svc.SetReplicationCursor(cursor)

	// Open the log first (repairs a torn tail), then replay the suffix
	// the snapshot does not cover.
	log, err := wal.Open(filepath.Join(dir, walDirName), wal.Options{
		Sync:         cfg.Sync,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	s := &Service{dir: dir, cfg: cfg, svc: svc, log: log, snapshotBarrier: barrier}
	if err := s.replay(barrier); err != nil {
		log.Close()
		return nil, err
	}
	// Clean any leftovers from interrupted checkpoints.
	if err := s.cleanStale(snapDir); err != nil {
		log.Close()
		return nil, err
	}
	return s, nil
}

func (s *Service) replay(barrier uint64) error {
	n := 0
	_, err := wal.Replay(filepath.Join(s.dir, walDirName), func(r wal.Record) error {
		if r.LSN < barrier {
			return nil // already folded into the snapshot
		}
		n++
		switch r.Type {
		case RecBefriend:
			a, b, w, err := DecodeBefriend(r.Data)
			if err != nil {
				return fmt.Errorf("durable: lsn %d: %w", r.LSN, err)
			}
			return s.svc.Befriend(a, b, w)
		case RecTag:
			u, i, tg, err := DecodeTag(r.Data)
			if err != nil {
				return fmt.Errorf("durable: lsn %d: %w", r.LSN, err)
			}
			return s.svc.Tag(u, i, tg)
		case RecBefriendAt:
			// Stamped records apply as PLAIN mutations plus an advance-only
			// cursor restore — not through BefriendAt. The live path skips
			// deterministic rejections without logging them, so the logged
			// stamped LSNs may have gaps a strict cursor check would refuse.
			flsn, a, b, w, err := DecodeBefriendAt(r.Data)
			if err != nil {
				return fmt.Errorf("durable: lsn %d: %w", r.LSN, err)
			}
			if err := s.svc.Befriend(a, b, w); err != nil {
				return err
			}
			s.svc.SetReplicationCursor(flsn)
			return nil
		case RecTagAt:
			flsn, u, i, tg, err := DecodeTagAt(r.Data)
			if err != nil {
				return fmt.Errorf("durable: lsn %d: %w", r.LSN, err)
			}
			if err := s.svc.Tag(u, i, tg); err != nil {
				return err
			}
			s.svc.SetReplicationCursor(flsn)
			return nil
		default:
			return fmt.Errorf("durable: lsn %d: unknown record type %d", r.LSN, r.Type)
		}
	})
	s.recoveredRecords = n
	return err
}

// cleanStale removes snapshot directories other than the live one and
// any interrupted temporary directories.
func (s *Service) cleanStale(live string) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || name == live || name == walDirName {
			continue
		}
		if strings.HasPrefix(name, snapshotPrefix) || strings.HasPrefix(name, ".tmp-") {
			if err := os.RemoveAll(filepath.Join(s.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Befriend durably records a friendship declaration. See
// social.Service.Befriend for semantics.
func (s *Service) Befriend(a, b string, weight float64) error {
	if err := s.validateBefriend(a, b, weight); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logged(RecBefriend, EncodeBefriend(a, b, weight), func() error {
		return s.svc.Befriend(a, b, weight)
	})
}

// Tag durably records a tagging action. See social.Service.Tag.
func (s *Service) Tag(user, item, tag string) error {
	for _, n := range []string{user, item, tag} {
		if err := validateName(n); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logged(RecTag, EncodeTag(user, item, tag), func() error {
		return s.svc.Tag(user, item, tag)
	})
}

// BefriendAt is the apply-from-replication-log entry point (see
// social.Service.BefriendAt): the mutation is deduplicated and
// order-checked against the wrapped service's replication cursor, and
// only a record that actually advances the cursor is appended to this
// service's own write-ahead log — a replayed duplicate must not be
// logged twice. The record is logged as RecBefriendAt with the fleet
// LSN embedded, so the cursor itself is durable: a restarted replica
// recovers it from the manifest and the stamped log suffix and resumes
// the fleet stream from there instead of restreaming history. (Cursor
// advances for deterministically rejected records are deliberately not
// logged; after a restart the fleet re-streams those records and the
// replica re-skips them identically.)
func (s *Service) BefriendAt(lsn uint64, a, b string, weight float64) error {
	if lsn == 0 {
		return s.Befriend(a, b, weight)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Cursor discipline BEFORE logging: a duplicate must not be logged
	// twice, and a gap is a routine protocol answer (the sender streams
	// the missing records and retries), not a broken service.
	switch applied := s.svc.AppliedLSN(); {
	case lsn <= applied:
		return nil // already processed (and already logged)
	case lsn != applied+1:
		return fmt.Errorf("%w: record lsn %d, applied %d", social.ErrReplicationGap, lsn, applied)
	}
	// Deterministic rejections advance the cursor WITHOUT logging — the
	// record is a fleet-wide no-op, and the cursor must move in lockstep
	// with every other replica that skipped it identically.
	if err := s.validateBefriend(a, b, weight); err != nil {
		s.svc.SkipLSN(lsn)
		return err
	}
	return s.logged(RecBefriendAt, EncodeBefriendAt(lsn, a, b, weight), func() error {
		return s.svc.BefriendAt(lsn, a, b, weight)
	})
}

func (s *Service) validateBefriend(a, b string, weight float64) error {
	if err := validateName(a); err != nil {
		return err
	}
	if err := validateName(b); err != nil {
		return err
	}
	if weight <= 0 || weight > 1 {
		return fmt.Errorf("durable: weight %g outside (0,1]", weight)
	}
	if a == b {
		return fmt.Errorf("durable: self-friendship for %q", a)
	}
	return nil
}

// TagAt is BefriendAt's tagging sibling.
func (s *Service) TagAt(lsn uint64, user, item, tag string) error {
	if lsn == 0 {
		return s.Tag(user, item, tag)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch applied := s.svc.AppliedLSN(); {
	case lsn <= applied:
		return nil
	case lsn != applied+1:
		return fmt.Errorf("%w: record lsn %d, applied %d", social.ErrReplicationGap, lsn, applied)
	}
	for _, n := range []string{user, item, tag} {
		if err := validateName(n); err != nil {
			s.svc.SkipLSN(lsn)
			return err
		}
	}
	return s.logged(RecTagAt, EncodeTagAt(lsn, user, item, tag), func() error {
		return s.svc.TagAt(lsn, user, item, tag)
	})
}

// SkipLSN marks replication record lsn processed without applying or
// logging anything (see social.Service.SkipLSN). It is the wire-level
// cursor advance for records that are fleet-wide no-ops on a replica:
// deterministic rejections another replica already skipped, and the
// quorum log's RecTerm leadership records, which carry no mutation.
func (s *Service) SkipLSN(lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.SkipLSN(lsn)
}

// AppliedLSN returns the replication cursor of the wrapped service.
func (s *Service) AppliedLSN() uint64 {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	return svc.AppliedLSN()
}

// logged appends the record, applies the mutation, and runs the
// checkpoint policy. Callers hold s.mu and have fully validated the
// mutation, so apply cannot fail for user-input reasons; if it fails
// anyway the service is marked broken (log and memory may disagree).
func (s *Service) logged(t wal.Type, payload []byte, apply func() error) error {
	if s.broken {
		return ErrBroken
	}
	if _, err := s.log.Append(t, payload); err != nil {
		// Nothing was applied; memory still matches acknowledged log.
		return err
	}
	if err := s.apply(apply); err != nil {
		return err
	}
	s.writes++
	if s.cfg.CheckpointEvery > 0 && s.writes >= s.cfg.CheckpointEvery {
		if err := s.checkpointLocked(); err != nil {
			return fmt.Errorf("durable: auto-checkpoint: %w", err)
		}
	}
	return nil
}

func (s *Service) apply(fn func() error) error {
	if err := fn(); err != nil {
		s.broken = true
		return fmt.Errorf("%w (cause: %v)", ErrBroken, err)
	}
	return nil
}

// Sync forces buffered log records to stable storage (meaningful under
// wal.SyncManual; a no-op cost under wal.SyncAlways).
func (s *Service) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Sync()
}

// CachedSeekers reports the wrapped service's resident cached seekers
// (see social.Service.CachedSeekers).
func (s *Service) CachedSeekers() []string {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	return svc.CachedSeekers()
}

// WarmSeekers pre-warms the wrapped service's seeker cache (see
// social.Service.WarmSeekers). Warming touches no durable state.
func (s *Service) WarmSeekers(ctx context.Context, seekers []string) (int, error) {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	return svc.WarmSeekers(ctx, seekers)
}

// SnapshotWithCursor exports the wrapped service's compacted state
// pinned at its replication cursor (see social.Service), so a durable
// replica can serve as the bootstrap source for a joining peer.
func (s *Service) SnapshotWithCursor() (*graph.Graph, *tagstore.Store, *vocab.Set, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return nil, nil, nil, 0, ErrBroken
	}
	return s.svc.SnapshotWithCursor()
}

// ImportSnapshot replaces the replica's entire state with a snapshot
// exported by another replica, pinned at fleet-log LSN lsn (see
// social.Service.ImportSnapshot). The imported state exists nowhere in
// this replica's own log, so it is checkpointed to disk immediately —
// the manifest then carries the new cursor and the old log prefix is
// truncated. A persistence failure marks the service broken (memory is
// ahead of disk); reopening recovers the pre-import state and the join
// restarts from scratch.
func (s *Service) ImportSnapshot(g *graph.Graph, st *tagstore.Store, names *vocab.Set, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return ErrBroken
	}
	if err := s.svc.ImportSnapshot(g, st, names, lsn); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		s.broken = true
		return fmt.Errorf("%w (cause: persisting imported snapshot: %v)", ErrBroken, err)
	}
	return nil
}

// Checkpoint folds the current state into an atomic on-disk snapshot
// and truncates the now-redundant log prefix.
func (s *Service) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return ErrBroken
	}
	return s.checkpointLocked()
}

func (s *Service) checkpointLocked() error {
	g, st, names, err := s.svc.Snapshot()
	if err != nil {
		return err
	}
	barrier := s.log.NextLSN() // first LSN NOT covered by this snapshot
	// The replication cursor is part of the checkpointed state: the log
	// prefix holding the stamped records that advanced it is about to be
	// truncated, so the manifest must carry it across restarts.
	cursor := s.svc.AppliedLSN()

	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d", barrier))
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	if err := index.WriteFile(filepath.Join(tmp, "data.frnd"), g, st); err != nil {
		return err
	}
	if err := names.WriteDir(tmp); err != nil {
		return err
	}
	final := snapshotDirName(barrier)
	if err := os.Rename(tmp, filepath.Join(s.dir, final)); err != nil {
		return err
	}
	if err := writeManifest(s.dir, barrier, cursor); err != nil {
		return err
	}
	// The log prefix below the barrier is now redundant. Rotation puts
	// the barrier at a segment boundary so truncation can drop it all.
	if err := s.log.Rotate(); err != nil {
		return err
	}
	if err := s.log.TruncateThrough(barrier - 1); err != nil {
		return err
	}
	if err := s.cleanStale(final); err != nil {
		return err
	}
	s.writes = 0
	s.snapshotBarrier = barrier
	return nil
}

// Service implements search.Searcher on top of the wrapped in-memory
// service.
var _ search.Searcher = (*Service)(nil)

// Do answers one request (see search.Searcher and social.Service.Do).
// Unlike the in-memory service (where readers see the last compacted
// snapshot), a durable store's reads see every acknowledged write:
// pending mutations are folded in first. Compaction is a no-op when
// nothing is pending.
func (s *Service) Do(ctx context.Context, req search.Request) (search.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return search.Response{}, err
	}
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if err := svc.Flush(); err != nil {
		return search.Response{}, err
	}
	return svc.Do(ctx, req)
}

// DoBatch answers many requests concurrently with per-request error
// reporting (see social.Service.DoBatch). Like Do, reads see every
// acknowledged write: pending mutations are folded in once before the
// batch runs.
func (s *Service) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if err := svc.Flush(); err != nil {
		out := make([]search.BatchResult, len(reqs))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	return svc.DoBatch(ctx, reqs)
}

// Search answers seeker's top-k query with exact scores.
//
// Deprecated: use Do. Kept so v1 embedders compile unchanged; it
// shares social.Service.Search's normalization caveats (comma-split
// and trimmed tag names, k capped at search.MaxK).
func (s *Service) Search(seeker string, tags []string, k int) ([]social.Result, error) {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if err := svc.Flush(); err != nil {
		return nil, err
	}
	return svc.Search(seeker, tags, k)
}

// SearchBatch answers many queries concurrently with per-query error
// reporting.
//
// Deprecated: use DoBatch. Kept so v1 embedders compile unchanged.
func (s *Service) SearchBatch(queries []social.BatchQuery) []social.BatchResult {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if err := svc.Flush(); err != nil {
		out := make([]social.BatchResult, len(queries))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	return svc.SearchBatch(queries)
}

// Flush folds pending writes into the queryable snapshot without
// taking a checkpoint.
func (s *Service) Flush() error {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	return svc.Flush()
}

// ApplyInvalidation folds pending writes into the snapshot and applies
// a fleet invalidation broadcast to the seeker cache (see
// social.Service.ApplyInvalidation). Purely a cache/visibility
// operation — nothing is logged, since the mutations themselves arrive
// through Befriend/Tag.
func (s *Service) ApplyInvalidation(edges [][2]string, all bool) (int, error) {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	return svc.ApplyInvalidation(edges, all)
}

// Users lists all known user names.
func (s *Service) Users() []string {
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	return svc.Users()
}

// Stats reports service and durability counters.
type Stats struct {
	social.Stats
	// RecoveredRecords is the number of log records replayed by Open.
	RecoveredRecords int
	// SnapshotBarrier is the first LSN not covered by the live snapshot.
	SnapshotBarrier uint64
	// LogSegments is the number of live log segment files.
	LogSegments int
	// WritesSinceCheckpoint counts mutations since the last checkpoint.
	WritesSinceCheckpoint int
}

// Stats returns current counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Stats:                 s.svc.Stats(),
		RecoveredRecords:      s.recoveredRecords,
		SnapshotBarrier:       s.snapshotBarrier,
		LogSegments:           s.log.Segments(),
		WritesSinceCheckpoint: s.writes,
	}
}

// Close syncs and closes the log. The service must not be used after.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}

func validateName(n string) error {
	if n == "" {
		return errors.New("durable: empty name")
	}
	if strings.ContainsAny(n, "\n\r") {
		return fmt.Errorf("durable: name %q contains line breaks", n)
	}
	return nil
}

func snapshotDirName(barrier uint64) string {
	return fmt.Sprintf("%s%016x", snapshotPrefix, barrier)
}

// readManifest returns the live snapshot barrier, the replication
// cursor recorded with it, and the snapshot directory name, or
// (1, 0, "", nil) for a fresh directory. Both manifest versions load:
// v1 ("v1\n<barrier>\n", written before cursor persistence existed)
// reads as cursor 0, v2 adds the cursor line.
func readManifest(dir string) (uint64, uint64, string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 1, 0, "", nil
	}
	if err != nil {
		return 0, 0, "", err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var cursor uint64
	switch {
	case len(lines) == 2 && lines[0] == "v1":
		// cursor stays 0: the stream is re-deduplicated from the start
	case len(lines) == 3 && lines[0] == "v2":
		cursor, err = strconv.ParseUint(lines[2], 10, 64)
		if err != nil {
			return 0, 0, "", fmt.Errorf("durable: malformed MANIFEST cursor: %w", err)
		}
	default:
		return 0, 0, "", fmt.Errorf("durable: malformed MANIFEST %q", raw)
	}
	barrier, err := strconv.ParseUint(lines[1], 10, 64)
	if err != nil {
		return 0, 0, "", fmt.Errorf("durable: malformed MANIFEST barrier: %w", err)
	}
	snapDir := snapshotDirName(barrier)
	if _, err := os.Stat(filepath.Join(dir, snapDir)); err != nil {
		return 0, 0, "", fmt.Errorf("durable: MANIFEST names missing snapshot %s: %w", snapDir, err)
	}
	return barrier, cursor, snapDir, nil
}

// writeManifest atomically points MANIFEST at the snapshot with the
// given barrier, recording the replication cursor the snapshot covers.
func writeManifest(dir string, barrier, cursor uint64) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "v2\n%d\n%d\n", barrier, cursor); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func loadSnapshot(snapDir string, cfg social.ServiceConfig) (*social.Service, error) {
	g, st, err := index.ReadFile(filepath.Join(snapDir, "data.frnd"))
	if err != nil {
		return nil, fmt.Errorf("durable: loading snapshot index: %w", err)
	}
	names, err := vocab.ReadDir(snapDir)
	if err != nil {
		return nil, fmt.Errorf("durable: loading snapshot vocabularies: %w", err)
	}
	return social.Restore(cfg, g, st, names)
}
