package durable

import (
	"errors"
	"testing"

	"repro/internal/social"
)

// TestDurableReplicationDedupDoesNotDoubleLog pins the durable wrapper's
// LSN discipline: a redelivered record is deduplicated BEFORE the
// append, so recovery replays each mutation exactly once; a gap is a
// clean protocol error (never marks the service broken); and the
// cursor is durable — stamped records carry their fleet LSN into the
// local log, so a reopened service resumes from the last logged
// stamped LSN instead of restreaming history.
func TestDurableReplicationDedupDoesNotDoubleLog(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.BefriendAt(1, "alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.BefriendAt(1, "alice", "bob", 0.9); err != nil {
		t.Fatalf("redelivered record: %v", err)
	}
	if err := svc.TagAt(2, "bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := svc.TagAt(2, "bob", "luigis", "pizza"); err != nil {
		t.Fatalf("redelivered record: %v", err)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor = %d, want 2", got)
	}

	// A gap is refused cleanly: the service keeps working.
	if err := svc.BefriendAt(9, "x", "y", 0.5); !errors.Is(err, social.ErrReplicationGap) {
		t.Fatalf("gap err = %v, want social.ErrReplicationGap", err)
	}
	if err := svc.TagAt(3, "bob", "luigis", "italian"); err != nil {
		t.Fatalf("after refused gap: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: exactly the three accepted records, no duplicates, and
	// the cursor restored from the stamped records — catch-up resumes at
	// LSN 4 instead of restreaming history.
	re, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.RecoveredRecords != 3 {
		t.Fatalf("recovered %d records, want 3 (dedup must not double-log)", st.RecoveredRecords)
	}
	if got := re.AppliedLSN(); got != 3 {
		t.Fatalf("reopened cursor = %d, want 3 (persisted via stamped records)", got)
	}
	if st.Users != 2 || st.Items != 1 {
		t.Fatalf("recovered stats = %+v, want 2 users, 1 item", st)
	}
}

// TestDurableDeterministicRejectionAdvancesCursor pins the lockstep
// rule on the durable wrapper: a record it deterministically rejects
// (here a self-edge) advances the cursor WITHOUT being logged — every
// replica skips the identical record identically — and the stream
// continues; recovery replays only the accepted records.
func TestDurableDeterministicRejectionAdvancesCursor(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.BefriendAt(1, "alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.BefriendAt(2, "alice", "alice", 0.5); err == nil {
		t.Fatal("self-edge record accepted")
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor after rejected record = %d, want 2 (processed in lockstep)", got)
	}
	// The stream continues: record 3 is not a gap.
	if err := svc.TagAt(3, "bob", "luigis", "pizza"); err != nil {
		t.Fatalf("record after rejected one: %v", err)
	}
	// A name with a line break is a durable-side rejection too.
	if err := svc.TagAt(4, "bo\nb", "x", "y"); err == nil {
		t.Fatal("line-break name accepted")
	}
	if got := svc.AppliedLSN(); got != 4 {
		t.Fatalf("cursor = %d, want 4", got)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().RecoveredRecords; got != 2 {
		t.Fatalf("recovered %d records, want 2 (rejected records must not be logged)", got)
	}
	// The trailing unlogged skip (lsn 4) is lost on restart — the cursor
	// resumes at the last stamped record and the re-streamed rejection is
	// skipped identically again.
	if got := re.AppliedLSN(); got != 3 {
		t.Fatalf("reopened cursor = %d, want 3 (last stamped record)", got)
	}
	if err := re.TagAt(4, "bo\nb", "x", "y"); err == nil {
		t.Fatal("re-streamed line-break name accepted")
	}
	if got := re.AppliedLSN(); got != 4 {
		t.Fatalf("cursor after re-skip = %d, want 4", got)
	}
}
