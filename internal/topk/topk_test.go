package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapBasics(t *testing.T) {
	h := NewHeap(3)
	if h.K() != 3 || h.Len() != 0 || h.Full() {
		t.Fatalf("fresh heap state wrong")
	}
	if h.Threshold() != 0 {
		t.Fatalf("Threshold of non-full heap = %g, want 0", h.Threshold())
	}
	h.Offer(1, 5)
	h.Offer(2, 3)
	if h.Threshold() != 0 {
		t.Fatalf("Threshold before full = %g, want 0", h.Threshold())
	}
	h.Offer(3, 7)
	if !h.Full() || h.Threshold() != 3 {
		t.Fatalf("after 3 offers: full=%v threshold=%g", h.Full(), h.Threshold())
	}
	// score 2 must be rejected
	if h.Offer(4, 2) {
		t.Fatal("Offer(4,2) accepted below threshold")
	}
	// score 4 evicts the 3
	if !h.Offer(5, 4) {
		t.Fatal("Offer(5,4) rejected")
	}
	want := []Result{{3, 7}, {1, 5}, {5, 4}}
	if got := h.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Results = %v, want %v", got, want)
	}
}

func TestHeapKClamped(t *testing.T) {
	h := NewHeap(0)
	if h.K() != 1 {
		t.Fatalf("K = %d, want clamp to 1", h.K())
	}
}

func TestHeapTieBreaking(t *testing.T) {
	h := NewHeap(2)
	h.Offer(9, 1)
	h.Offer(4, 1)
	h.Offer(7, 1)
	// All score 1: the two smallest ids should be retained.
	want := []Result{{4, 1}, {7, 1}}
	if got := h.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tie results = %v, want %v", got, want)
	}
	// Same-score same behaviour regardless of insertion order.
	h2 := NewHeap(2)
	h2.Offer(4, 1)
	h2.Offer(7, 1)
	h2.Offer(9, 1)
	if got := h2.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("order-dependent tie results = %v, want %v", got, want)
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{{3, 1}, {1, 1}, {2, 9}}
	SortResults(rs)
	want := []Result{{2, 9}, {1, 1}, {3, 1}}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("SortResults = %v, want %v", rs, want)
	}
}

func TestTopKExact(t *testing.T) {
	scores := []float64{0, 5, 0, 2, 8, 1}
	got := TopKExact(scores, 3)
	want := []Result{{4, 8}, {1, 5}, {3, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopKExact = %v, want %v", got, want)
	}
	// zero scores never appear even when k exceeds positives
	got = TopKExact(scores, 10)
	if len(got) != 4 {
		t.Fatalf("TopKExact len = %d, want 4", len(got))
	}
}

func TestCandidates(t *testing.T) {
	c := NewCandidates()
	c.Add(5, 1.5)
	c.Add(2, 0.5)
	c.Add(5, 1.0)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Lower(5) != 2.5 || c.Lower(2) != 0.5 || c.Lower(99) != 0 {
		t.Fatalf("Lower values wrong: %g %g %g", c.Lower(5), c.Lower(2), c.Lower(99))
	}
	if got := c.Items(); !reflect.DeepEqual(got, []int32{2, 5}) {
		t.Fatalf("Items = %v", got)
	}
	item, upper, ok := c.BestUnconfirmed(1.0, nil)
	if !ok || item != 5 || upper != 3.5 {
		t.Fatalf("BestUnconfirmed = %d,%g,%v", item, upper, ok)
	}
	item, upper, ok = c.BestUnconfirmed(1.0, map[int32]bool{5: true})
	if !ok || item != 2 || upper != 1.5 {
		t.Fatalf("BestUnconfirmed with confirmed = %d,%g,%v", item, upper, ok)
	}
	_, _, ok = c.BestUnconfirmed(1.0, map[int32]bool{2: true, 5: true})
	if ok {
		t.Fatal("BestUnconfirmed reported a candidate when all confirmed")
	}
}

func TestCandidatesBestUnconfirmedTie(t *testing.T) {
	c := NewCandidates()
	c.Add(8, 1)
	c.Add(3, 1)
	item, _, ok := c.BestUnconfirmed(0, nil)
	if !ok || item != 3 {
		t.Fatalf("tie should pick smaller id, got %d", item)
	}
}

func TestCandidatesFillHeap(t *testing.T) {
	c := NewCandidates()
	c.Add(1, 3)
	c.Add(2, 5)
	c.Add(3, 1)
	h := NewHeap(2)
	c.FillHeap(h)
	want := []Result{{2, 5}, {1, 3}}
	if got := h.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FillHeap results = %v, want %v", got, want)
	}
}

func TestAccess(t *testing.T) {
	a := Access{Sequential: 3, Random: 4, UsersExpanded: 2}
	b := Access{Sequential: 1, Random: 1, UsersExpanded: 1}
	a.Add(b)
	if a.Sequential != 4 || a.Random != 5 || a.UsersExpanded != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Total() != 9 {
		t.Fatalf("Total = %d, want 9", a.Total())
	}
}

// Property: heap retains exactly the k best of any input, matching a
// full sort.
func TestPropertyHeapMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		k := 1 + rng.Intn(12)
		type pair struct {
			item  int32
			score float64
		}
		var all []pair
		h := NewHeap(k)
		for i := 0; i < n; i++ {
			p := pair{item: int32(i), score: float64(rng.Intn(20))}
			all = append(all, p)
			h.Offer(p.item, p.score)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].score != all[j].score {
				return all[i].score > all[j].score
			}
			return all[i].item < all[j].item
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := h.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Item != want[i].item || got[i].Score != want[i].score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: threshold is always the minimum of the held results once
// full, and Offer never lowers the result set quality.
func TestPropertyThresholdIsMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		h := NewHeap(k)
		for i := 0; i < 50; i++ {
			h.Offer(int32(i), rng.Float64()*10)
			if h.Full() {
				rs := h.Results()
				min := rs[len(rs)-1].Score
				if h.Threshold() != min {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
