// Package topk provides the building blocks shared by all top-k query
// algorithms in this repository: a bounded result heap, a candidate table
// that tracks [lower, upper] score intervals per item (the NRA
// bookkeeping), and an access accountant that records the
// hardware-independent cost measures reported in the experiments.
package topk

import (
	"container/heap"
	"slices"
)

// Result is a scored item in a final answer list.
type Result struct {
	Item  int32
	Score float64
}

// Heap is a bounded min-heap keeping the k highest-scoring items seen.
// Ties are broken toward the smaller item id (deterministic results).
// The zero value is unusable; construct with NewHeap.
type Heap struct {
	k     int
	items resultHeap
}

// NewHeap returns a heap retaining the top k results. k must be >= 1.
func NewHeap(k int) *Heap {
	if k < 1 {
		k = 1
	}
	return &Heap{k: k}
}

// K reports the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len reports how many results are currently held (≤ k).
func (h *Heap) Len() int { return len(h.items) }

// Offer inserts the result if it beats the current k-th best. It reports
// whether the heap contents changed.
func (h *Heap) Offer(item int32, score float64) bool {
	if len(h.items) < h.k {
		heap.Push(&h.items, Result{Item: item, Score: score})
		return true
	}
	worst := h.items[0]
	if score > worst.Score || (score == worst.Score && item < worst.Item) {
		h.items[0] = Result{Item: item, Score: score}
		heap.Fix(&h.items, 0)
		return true
	}
	return false
}

// Threshold returns the k-th best score currently held, or 0 when fewer
// than k results are present (any item could still enter).
func (h *Heap) Threshold() float64 {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].Score
}

// Full reports whether k results are held.
func (h *Heap) Full() bool { return len(h.items) >= h.k }

// Results returns the held results sorted by (score desc, item asc).
func (h *Heap) Results() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	SortResults(out)
	return out
}

// SortResults orders results by score descending, breaking ties by item
// id ascending. All algorithms use this order so answers are comparable.
// slices.SortFunc keeps it allocation-free (sort.Slice boxes through an
// interface), which matters on the zero-alloc serving path.
func SortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Item < b.Item:
			return -1
		case a.Item > b.Item:
			return 1
		default:
			return 0
		}
	})
}

// resultHeap is a min-heap on (score, then larger item id first so the
// deterministically-worst entry is at the root).
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Item > h[j].Item
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

// TopKExact selects the k best entries from a full score vector,
// skipping zero scores. It is the reference the threshold algorithms are
// tested against.
func TopKExact(scores []float64, k int) []Result {
	h := NewHeap(k)
	for i, s := range scores {
		if s > 0 {
			h.Offer(int32(i), s)
		}
	}
	return h.Results()
}
