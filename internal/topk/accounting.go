package topk

// Access counts the hardware-independent cost measures every algorithm
// reports. Sequential accesses walk a posting list front-to-back; random
// accesses are point lookups; UsersExpanded counts social-frontier
// settlements (zero for non-social algorithms).
type Access struct {
	Sequential    int64
	Random        int64
	UsersExpanded int64
}

// Add accumulates another accountant's counts into a.
func (a *Access) Add(b Access) {
	a.Sequential += b.Sequential
	a.Random += b.Random
	a.UsersExpanded += b.UsersExpanded
}

// Total reports the combined list-access count (sequential + random).
func (a Access) Total() int64 { return a.Sequential + a.Random }
