package topk

// Cand is one tracked candidate of a Table: the NRA bookkeeping pair
// (confirmed lower bound, upper-bound remainder key) plus the table's
// internal heap position. Callers mutate Lower and Rem directly and
// must call Table.Promote after raising Lower so the incremental top-k
// stays consistent.
type Cand struct {
	Item  int32
	Lower float64 // confirmed score mass
	Rem   int64   // algorithm-specific upper-bound remainder
	pos   int32   // index into the top-k heap, -1 when outside
}

// InTopK reports whether the candidate currently sits in the table's
// incremental top-k set.
func (c *Cand) InTopK() bool { return c.pos >= 0 }

// Table is the slice-backed replacement for the map-based candidate
// bookkeeping on the query hot path: a dense epoch-stamped slot array
// gives O(1) item lookup without hashing, candidates live in one
// contiguous slice (cache-friendly to scan during certification), and
// a bounded min-heap over candidate indexes maintains the running top-k
// set and its threshold τ incrementally — O(log k) per score increase
// instead of a full heap rebuild per stop check.
//
// All storage is retained across Reset calls, so a pooled Table runs
// allocation-free once warm. A Table is not safe for concurrent use;
// recycle it through a sync.Pool or a per-shard single-writer loop.
type Table struct {
	epoch uint32
	stamp []uint32 // stamp[item] == epoch ⇒ slot[item] is valid
	slot  []int32  // item → index into cands
	cands []Cand

	k    int
	heap []int32 // candidate indexes; min-heap, root = worst member
}

// NewTable returns an empty table; call Reset before use.
func NewTable() *Table { return &Table{} }

// Reset prepares the table for a universe of `universe` items and a
// top-k of size k (≥ 1). It is O(1) amortized: slots are invalidated by
// bumping the epoch, not by clearing.
func (t *Table) Reset(universe, k int) {
	if k < 1 {
		k = 1
	}
	t.k = k
	t.cands = t.cands[:0]
	t.heap = t.heap[:0]
	if len(t.stamp) < universe {
		t.stamp = make([]uint32, universe)
		t.slot = make([]int32, universe)
		t.epoch = 0
	}
	t.epoch++
	if t.epoch == 0 { // uint32 wraparound: stale stamps could collide
		clear(t.stamp)
		t.epoch = 1
	}
}

// Len reports the number of distinct candidates observed.
func (t *Table) Len() int { return len(t.cands) }

// Lookup returns the candidate index for an item, or -1 if unseen.
func (t *Table) Lookup(item int32) int32 {
	if t.stamp[item] != t.epoch {
		return -1
	}
	return t.slot[item]
}

// Ensure returns the candidate index for an item, creating a zero-value
// candidate (Lower 0, Rem 0, outside the top-k) on first sight.
func (t *Table) Ensure(item int32) (idx int32, created bool) {
	if t.stamp[item] == t.epoch {
		return t.slot[item], false
	}
	idx = int32(len(t.cands))
	t.stamp[item] = t.epoch
	t.slot[item] = idx
	t.cands = append(t.cands, Cand{Item: item, pos: -1})
	return idx, true
}

// At returns the candidate at an index. The pointer is invalidated by
// the next Ensure call (the backing slice may grow); do not retain it
// across insertions.
func (t *Table) At(idx int32) *Cand { return &t.cands[idx] }

// All returns the dense candidate slice (insertion order). It aliases
// internal storage and is invalidated by Ensure/Reset.
func (t *Table) All() []Cand { return t.cands }

// Tau returns the incremental threshold: the k-th best confirmed lower
// bound, or 0 while fewer than k positive candidates exist. Because
// lower bounds only grow, Tau is non-decreasing over a run.
func (t *Table) Tau() float64 {
	if len(t.heap) < t.k {
		return 0
	}
	return t.cands[t.heap[0]].Lower
}

// TopLen reports the current top-k member count (≤ k).
func (t *Table) TopLen() int { return len(t.heap) }

// Promote restores the top-k invariant after the candidate's Lower
// increased. Call it only for candidates with Lower > 0 — zero-lower
// candidates are by convention never members (they tie with every
// unseen item). The ordering is the repository-wide total order
// (score desc, item asc), so the maintained set is exactly the set a
// full rebuild over all candidates would produce, independent of
// update order: members only improve, τ only grows, and a non-member
// whose last comparison lost against τ can never belong later without
// another Promote.
func (t *Table) Promote(idx int32) {
	c := &t.cands[idx]
	if c.pos >= 0 {
		// Already a member: its Lower grew, so it may need to sink away
		// from the root (the root is the worst member).
		t.siftDown(int(c.pos))
		return
	}
	if len(t.heap) < t.k {
		c.pos = int32(len(t.heap))
		t.heap = append(t.heap, idx)
		t.siftUp(int(c.pos))
		return
	}
	root := &t.cands[t.heap[0]]
	if c.Lower > root.Lower || (c.Lower == root.Lower && c.Item < root.Item) {
		root.pos = -1
		t.heap[0] = idx
		c.pos = 0
		t.siftDown(0)
	}
}

// worse reports whether candidate a ranks strictly below candidate b in
// the total order (score desc, item asc) — i.e. a belongs closer to the
// min-heap root.
func (t *Table) worse(a, b int32) bool {
	ca, cb := &t.cands[a], &t.cands[b]
	if ca.Lower != cb.Lower {
		return ca.Lower < cb.Lower
	}
	return ca.Item > cb.Item
}

func (t *Table) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *Table) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r < n && t.worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.swap(i, worst)
		i = worst
	}
}

func (t *Table) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.cands[t.heap[i]].pos = int32(i)
	t.cands[t.heap[j]].pos = int32(j)
}

// AppendTopResults appends the current top-k members to buf (reusing
// its capacity) sorted by (score desc, item asc) and returns it.
func (t *Table) AppendTopResults(buf []Result) []Result {
	for _, idx := range t.heap {
		c := &t.cands[idx]
		buf = append(buf, Result{Item: c.Item, Score: c.Lower})
	}
	SortResults(buf[len(buf)-len(t.heap):])
	return buf
}
