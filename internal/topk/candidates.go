package topk

import "slices"

// Candidates is the NRA-style bookkeeping table: for every item observed
// during list processing it tracks a confirmed lower bound (mass already
// seen) and the key needed to derive an upper bound (mass that could
// still arrive). The upper-bound *remainder* is algorithm-specific, so
// the table stores only the seen mass and lets the caller supply the
// remainder when asking questions.
//
// Candidates is the general-purpose map-backed table; the query hot
// path uses the denser, allocation-free Table instead.
type Candidates struct {
	seen    map[int32]float64
	scratch []int32 // reused by FillHeap for deterministic drain order
}

// NewCandidates returns an empty table.
func NewCandidates() *Candidates {
	return &Candidates{seen: make(map[int32]float64)}
}

// Add accumulates confirmed score mass for an item.
func (c *Candidates) Add(item int32, delta float64) {
	c.seen[item] += delta
}

// Lower returns the confirmed lower bound for an item (0 if never seen).
func (c *Candidates) Lower(item int32) float64 { return c.seen[item] }

// Len reports the number of distinct items observed.
func (c *Candidates) Len() int { return len(c.seen) }

// Items returns all observed item ids in ascending order.
func (c *Candidates) Items() []int32 {
	out := make([]int32, 0, len(c.seen))
	for i := range c.seen {
		out = append(out, i)
	}
	slices.Sort(out)
	return out
}

// BestUnconfirmed returns the maximum, over observed items not already in
// the confirmed set, of lower(item) + remainder — the tightest upper
// bound on any candidate still able to improve. confirmed may be nil.
func (c *Candidates) BestUnconfirmed(remainder float64, confirmed map[int32]bool) (item int32, upper float64, ok bool) {
	first := true
	for i, lo := range c.seen {
		if confirmed != nil && confirmed[i] {
			continue
		}
		up := lo + remainder
		if first || up > upper || (up == upper && i < item) {
			item, upper, ok, first = i, up, true, false
		}
	}
	return item, upper, ok
}

// FillHeap offers every observed item (plus remainder 0, i.e. its lower
// bound) into the heap. Used when an algorithm terminates and the lower
// bounds are final scores. Deterministic iteration (sorted ids) goes
// through a scratch slice reused across drains, so repeated drains do
// not allocate.
func (c *Candidates) FillHeap(h *Heap) {
	c.scratch = c.scratch[:0]
	for i := range c.seen {
		c.scratch = append(c.scratch, i)
	}
	slices.Sort(c.scratch)
	for _, i := range c.scratch {
		h.Offer(i, c.seen[i])
	}
}
