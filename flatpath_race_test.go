//go:build race

package repro

// raceEnabled reports whether the race detector is on. sync.Pool
// deliberately drops items at random under the race detector, so
// allocation-count assertions are meaningless there.
const raceEnabled = true
