// Package repro's root benchmarks mirror the experiment registry: one
// testing.B benchmark per table/figure, so `go test -bench=. -benchmem`
// regenerates the evaluation's measurements in benchmark form. The
// richer tabular output (quality metrics, sweeps) comes from
// cmd/benchall; these benches give the wall-clock/allocation view of
// the same code paths.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/overlay"
	"repro/internal/proximity"
	"repro/internal/recommend"
	"repro/internal/similarity"
	"repro/internal/social"
	"repro/internal/tagstore"
)

// benchScale keeps benchmark corpora affordable while preserving the
// preset shapes (400 users at 0.2 of the 2000-user presets).
const benchScale = 0.2

func benchDataset(b *testing.B) *gen.Dataset {
	b.Helper()
	ds, err := gen.Generate(gen.DeliciousParams().Scale(benchScale), 42)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchEngine(b *testing.B, ds *gen.Dataset) *core.Engine {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.1}
	e, err := core.NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchWorkload(b *testing.B, ds *gen.Dataset, n int) []gen.QuerySpec {
	b.Helper()
	wp := gen.DefaultWorkloadParams()
	wp.NumQueries = n
	qs, err := gen.Workload(ds, wp, 42)
	if err != nil {
		b.Fatal(err)
	}
	return qs
}

// BenchmarkTable1_DatasetStats covers Table 1: corpus generation plus
// structural statistics.
func BenchmarkTable1_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := gen.Generate(gen.DeliciousParams().Scale(benchScale), 42)
		if err != nil {
			b.Fatal(err)
		}
		_ = ds.Graph.ComputeStats(64)
		_ = ds.Store.ComputeStats()
	}
}

// BenchmarkTable2_IndexBuild covers Table 2: serializing a dataset to
// the on-disk format.
func BenchmarkTable2_IndexBuild(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := index.Write(io.Discard, ds.Graph, ds.Store); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3_Exactness covers Table 3: a SocialMerge/ExactSocial
// pair on the same query (the exactness comparison path).
func BenchmarkTable3_Exactness(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	qs := benchWorkload(b, ds, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := qs[i%len(qs)]
		q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
		if _, err := e.SocialMerge(q, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := e.ExactSocial(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_TopK covers Fig 4: per-algorithm latency across k.
func BenchmarkFig4_TopK(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	qs := benchWorkload(b, ds, 8)
	algos := map[string]func(core.Query) (core.Answer, error){
		"SocialMerge": func(q core.Query) (core.Answer, error) { return e.SocialMerge(q, core.Options{}) },
		"ExactSocial": e.ExactSocial,
		"GlobalTopK":  e.GlobalTopK,
	}
	for _, name := range []string{"SocialMerge", "ExactSocial", "GlobalTopK"} {
		algo := algos[name]
		for _, k := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := qs[i%len(qs)]
					q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: k}
					if _, err := algo(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5_Accesses covers Fig 5 by reporting the access counters
// as custom benchmark metrics.
func BenchmarkFig5_Accesses(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	qs := benchWorkload(b, ds, 8)
	var seq, rnd, settled int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := qs[i%len(qs)]
		q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
		ans, err := e.SocialMerge(q, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		seq += ans.Access.Sequential
		rnd += ans.Access.Random
		settled += int64(ans.UsersSettled)
	}
	b.ReportMetric(float64(seq)/float64(b.N), "seq-accesses/op")
	b.ReportMetric(float64(rnd)/float64(b.N), "rand-accesses/op")
	b.ReportMetric(float64(settled)/float64(b.N), "users-settled/op")
}

// BenchmarkFig6_AlphaSweep covers Fig 6: latency under different hop
// damping factors.
func BenchmarkFig6_AlphaSweep(b *testing.B) {
	ds := benchDataset(b)
	qs := benchWorkload(b, ds, 8)
	for _, alpha := range []float64{0.5, 0.8, 1.0} {
		cfg := core.DefaultConfig()
		cfg.Proximity = proximity.Params{Alpha: alpha, SelfWeight: 1, MinSigma: 0.1}
		e, err := core.NewEngine(ds.Graph, ds.Store, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := qs[i%len(qs)]
				q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
				if _, err := e.SocialMerge(q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_SeekerDegree covers Fig 7: latency by seeker
// connectivity.
func BenchmarkFig7_SeekerDegree(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	for _, pct := range []int{10, 50, 99} {
		wp := gen.DefaultWorkloadParams()
		wp.NumQueries = 8
		wp.SeekerPercentile = pct
		qs, err := gen.Workload(ds, wp, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := qs[i%len(qs)]
				q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
				if _, err := e.SocialMerge(q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8_Approx covers Fig 8: the approximate variants.
func BenchmarkFig8_Approx(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	qs := benchWorkload(b, ds, 8)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"exact", core.Options{}},
		{"theta=0.01", core.Options{Theta: 0.01}},
		{"hops=2", core.Options{MaxHops: 2}},
		{"maxusers=32", core.Options{MaxUsers: 32}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := qs[i%len(qs)]
				q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
				if _, err := e.SocialMerge(q, v.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9_Scalability covers Fig 9: latency vs network size.
func BenchmarkFig9_Scalability(b *testing.B) {
	for _, scale := range []float64{0.1, 0.2, 0.4} {
		p := gen.DeliciousParams().Scale(scale)
		ds, err := gen.Generate(p, 42)
		if err != nil {
			b.Fatal(err)
		}
		e := benchEngine(b, ds)
		qs := benchWorkload(b, ds, 8)
		for _, algo := range []string{"merge", "exact"} {
			b.Run(fmt.Sprintf("users=%d/%s", ds.Graph.NumUsers(), algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := qs[i%len(qs)]
					q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
					var err error
					if algo == "merge" {
						_, err = e.SocialMerge(q, core.Options{})
					} else {
						_, err = e.ExactSocial(q)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10_Ablation covers Fig 10: landmark pruning and
// materialized neighbourhoods.
func BenchmarkFig10_Ablation(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	lm, err := proximity.BuildLandmarks(ds.Graph, 8, e.ProximityParams())
	if err != nil {
		b.Fatal(err)
	}
	e.AttachLandmarks(lm)
	nbr, err := core.BuildNeighborhoods(ds.Graph, 64, e.ProximityParams())
	if err != nil {
		b.Fatal(err)
	}
	e.AttachNeighborhoods(nbr)
	qs := benchWorkload(b, ds, 8)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"plain", core.Options{}},
		{"landmarks", core.Options{LandmarkPrune: true}},
		{"neighborhoods", core.Options{UseNeighborhoods: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := qs[i%len(qs)]
				q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
				if _, err := e.SocialMerge(q, v.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11_BetaSweep covers Fig 11: the social/global blend.
func BenchmarkFig11_BetaSweep(b *testing.B) {
	ds := benchDataset(b)
	qs := benchWorkload(b, ds, 8)
	for _, beta := range []float64{0, 0.5, 1} {
		cfg := core.DefaultConfig()
		cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.1}
		cfg.Beta = beta
		e, err := core.NewEngine(ds.Graph, ds.Store, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := qs[i%len(qs)]
				q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
				if _, err := e.SocialMerge(q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecommend measures the recommendation extension.
func BenchmarkRecommend(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	r := recommend.New(e)
	seeker := ds.Graph.DegreePercentileUser(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Recommend(seeker, recommend.Params{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt1_HorizonCache contrasts cold and cached query execution
// through the serving layer (Ext 1).
func BenchmarkExt1_HorizonCache(b *testing.B) {
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	qs := benchWorkload(b, ds, 8)
	b.Run("cold", func(b *testing.B) {
		x, err := exec.New(e, exec.Config{Workers: 1, CacheSize: 0})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			spec := qs[i%len(qs)]
			q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
			if _, err := x.Query(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		x, err := exec.New(e, exec.Config{Workers: 1, CacheSize: 64})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			spec := qs[i%len(qs)]
			q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: 10}
			if _, err := x.Query(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExt2_OverlayCompaction measures folding a 500-write delta
// into the snapshot (Ext 2).
func BenchmarkExt2_OverlayCompaction(b *testing.B) {
	ds := benchDataset(b)
	users := ds.Graph.NumUsers()
	items := ds.Store.NumItems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o, err := overlay.New(ds.Graph, ds.Store)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 500; j++ {
			if err := o.Tag(int32((i+j*7)%users), int32((j*13)%items), 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := o.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt3_Reweight measures behaviour-derived edge re-weighting
// (Ext 3).
func BenchmarkExt3_Reweight(b *testing.B) {
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := similarity.Reweight(ds.Graph, ds.Store, similarity.DefaultReweightParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexRead measures loading the on-disk format back.
func BenchmarkIndexRead(b *testing.B) {
	ds := benchDataset(b)
	var buf bytes.Buffer
	if err := index.Write(&buf, ds.Graph, ds.Store); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := index.Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSocialFacade measures the end-to-end named API.
func BenchmarkSocialFacade(b *testing.B) {
	svc, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 50; u++ {
		a := fmt.Sprintf("user%d", u)
		c := fmt.Sprintf("user%d", (u+1)%50)
		if err := svc.Befriend(a, c, 0.6); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if err := svc.Tag(a, fmt.Sprintf("item%d", (u*3+j)%40), "go"); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := svc.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Search("user0", []string{"go"}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProximityIterator measures the incremental expansion itself.
func BenchmarkProximityIterator(b *testing.B) {
	ds := benchDataset(b)
	params := proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.1}
	seeker := ds.Graph.DegreePercentileUser(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := proximity.NewIterator(ds.Graph, seeker, params)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

// TestBenchRegistrySmoke keeps the root package's tie to the experiment
// registry under test: every experiment must run at smoke scale.
func TestBenchRegistrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	cfg := bench.Config{Scale: 0.04, Seed: 3, Queries: 3}
	for _, e := range bench.All() {
		if err := e.Run(cfg, io.Discard); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
}

// TestStoreUniverseGuard double-checks the packed-id limit documented in
// tagstore (universe ids must stay below 2^21 for the point index).
func TestStoreUniverseGuard(t *testing.T) {
	const limit = 1 << 21
	for _, p := range gen.Presets() {
		big := p.Scale(8) // largest scale used anywhere in the suite
		if big.Graph.NumUsers >= limit || big.NumItems >= limit || big.NumTags >= limit {
			t.Fatalf("%s at scale 8 exceeds packed-id limit", p.Name)
		}
	}
	_ = tagstore.TagID(0)
}
