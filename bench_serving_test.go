package repro

// Serving-path benchmarks for the batch-search subsystem: one op is a
// fixed 64-query workload over a small set of repeating seekers, served
// (a) cold — seeker cache disabled, every query re-expands the graph,
// (b) through the mutation-aware seeker cache (internal/qcache), and
// (c) as one SearchBatch on the worker pool with the cache enabled.
// Comparing ns/op across the three shows what horizon reuse and
// batching buy on identical work:
//
//	go test -bench 'Serving' -benchmem .

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/proximity"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/social"
	"repro/internal/vocab"
)

// servingWorkload is the number of queries per benchmark op;
// servingSeekers the number of distinct seekers they revisit.
const (
	servingWorkload = 64
	servingSeekers  = 8
)

// servingService restores a generated corpus into a name-addressed
// service with the given cache size (negative disables caching). It is
// shared with the zero-allocation and cross-layout property tests in
// flatpath_test.go, hence testing.TB.
func servingService(b testing.TB, cacheSize int) (*social.Service, []social.BatchQuery) {
	b.Helper()
	ds, err := gen.Generate(gen.DeliciousParams().Scale(benchScale), 42)
	if err != nil {
		b.Fatal(err)
	}
	names := vocab.NewSet()
	for u := 0; u < ds.Graph.NumUsers(); u++ {
		names.Users.MustAdd(fmt.Sprintf("u%d", u))
	}
	for i := 0; i < ds.Store.NumItems(); i++ {
		names.Items.MustAdd(fmt.Sprintf("i%d", i))
	}
	for tg := 0; tg < ds.Store.NumTags(); tg++ {
		names.Tags.MustAdd(fmt.Sprintf("t%d", tg))
	}
	cfg := social.DefaultServiceConfig()
	cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.1}
	cfg.SeekerCacheSize = cacheSize
	svc, err := social.Restore(cfg, ds.Graph, ds.Store, names)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	seekers := make([]string, servingSeekers)
	for i := range seekers {
		seekers[i] = fmt.Sprintf("u%d", rng.Intn(ds.Graph.NumUsers()))
	}
	queries := make([]social.BatchQuery, servingWorkload)
	for i := range queries {
		queries[i] = social.BatchQuery{
			Seeker: seekers[i%servingSeekers],
			Tags:   []string{fmt.Sprintf("t%d", rng.Intn(ds.Store.NumTags()))},
			K:      10,
		}
	}
	return svc, queries
}

// servingRequests converts the workload to prebuilt v2 requests so the
// sequential benchmarks measure the serving path, not request
// construction.
func servingRequests(queries []social.BatchQuery) []search.Request {
	reqs := make([]search.Request, len(queries))
	for i, q := range queries {
		reqs[i] = search.Request{Seeker: q.Seeker, Tags: q.Tags, K: q.K, Mode: search.ModeExact}
	}
	return reqs
}

func runSequential(b *testing.B, svc *social.Service, reqs []search.Request, resp *search.Response) {
	for i := range reqs {
		if err := svc.DoInto(context.Background(), reqs[i], resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingColdSearch: N sequential searches, cache disabled —
// the baseline every serving optimisation is measured against.
func BenchmarkServingColdSearch(b *testing.B) {
	svc, queries := servingService(b, -1)
	reqs := servingRequests(queries)
	var resp search.Response
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSequential(b, svc, reqs, &resp)
	}
}

// BenchmarkServingCachedSearch: the same sequential workload through
// the seeker cache — repeated seekers reuse their horizon expansion.
// With the response buffer reused, the warm path is expected to run
// allocation-free (gated by benchgate's allocs/op baseline).
func BenchmarkServingCachedSearch(b *testing.B) {
	svc, queries := servingService(b, 0) // 0 = default size
	reqs := servingRequests(queries)
	var resp search.Response
	runSequential(b, svc, reqs, &resp) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSequential(b, svc, reqs, &resp)
	}
}

// BenchmarkServingBatchSearch: the same workload as one SearchBatch on
// the bounded worker pool, cache enabled.
func BenchmarkServingBatchSearch(b *testing.B) {
	svc, queries := servingService(b, 0)
	svc.SearchBatch(queries) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range svc.SearchBatch(queries) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkServingFleetLoopback: the same 64-query workload as one
// DoBatch through a 3-replica loopback fleet — front-end pool →
// httptest replicas speaking the real /v2 wire format — with warm
// caches. Comparing against BenchmarkServingBatchSearch shows what the
// network hop (HTTP, JSON, routing) costs on identical work; benchgate
// pins the remote path's overhead ratio so a serialization or routing
// regression fails CI even on different hardware.
func BenchmarkServingFleetLoopback(b *testing.B) {
	var clients []*fleet.Client
	var queries []social.BatchQuery
	for i := 0; i < 3; i++ {
		// servingService is deterministic (fixed gen + rng seeds), so
		// three calls build three identical replicas.
		svc, qs := servingService(b, 0)
		queries = qs
		srv, err := server.New(svc)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		c, err := fleet.NewClient(ts.URL, fleet.ClientConfig{})
		if err != nil {
			b.Fatal(err)
		}
		clients = append(clients, c)
	}
	pool, err := fleet.NewPool(clients, fleet.PoolConfig{HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	reqs := make([]search.Request, len(queries))
	for i, q := range queries {
		reqs[i] = search.Request{Seeker: q.Seeker, Tags: q.Tags, K: q.K, Mode: search.ModeExact}
	}
	ctx := context.Background()
	run := func() {
		for _, r := range pool.DoBatch(ctx, reqs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	run() // warm every replica's cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// churnService builds a world of disjoint communities (chains of
// churnCommunitySize users, each tagging one item with "pizza") for the
// mutation-churn benchmarks: one op is a friendship mutation confined
// to community 0 followed by a query from every community's seeker, so
// the two invalidation policies differ only in how much cached state
// one mutation destroys.
const (
	churnCommunities   = 16
	churnCommunitySize = 6
)

func churnService(b *testing.B, edgeScopeLimit int) *social.Service {
	b.Helper()
	cfg := social.DefaultServiceConfig()
	cfg.Proximity = proximity.Params{Alpha: 0.8, SelfWeight: 1, MinSigma: 0.01}
	cfg.AutoCompactEvery = 0 // every write compacts (and invalidates)
	cfg.SeekerCacheSize = 512
	cfg.EdgeScopeLimit = edgeScopeLimit
	svc, err := social.NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < churnCommunities; c++ {
		for u := 0; u < churnCommunitySize-1; u++ {
			if err := svc.Befriend(churnUser(c, u), churnUser(c, u+1), 0.9); err != nil {
				b.Fatal(err)
			}
		}
		for u := 0; u < churnCommunitySize; u++ {
			if err := svc.Tag(churnUser(c, u), fmt.Sprintf("c%di%d", c, u), "pizza"); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := svc.Flush(); err != nil {
		b.Fatal(err)
	}
	return svc
}

func churnUser(c, u int) string { return fmt.Sprintf("c%du%d", c, u) }

func runChurn(b *testing.B, svc *social.Service) {
	b.Helper()
	queryAll := func() {
		for c := 0; c < churnCommunities; c++ {
			if _, err := svc.Search(churnUser(c, 0), []string{"pizza"}, 5); err != nil {
				b.Fatal(err)
			}
		}
	}
	queryAll() // warm every community's seeker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Befriend(churnUser(0, i%(churnCommunitySize-1)), churnUser(0, i%(churnCommunitySize-1)+1), 0.9); err != nil {
			b.Fatal(err)
		}
		queryAll()
	}
	b.StopTimer()
	b.ReportMetric(svc.Stats().SeekerCache.HitRate(), "hit-rate")
}

// BenchmarkServingMutationChurnEdgeScoped: mixed mutation workload
// under edge-scoped invalidation — only the mutated community
// cold-starts, every other seeker keeps its horizon.
func BenchmarkServingMutationChurnEdgeScoped(b *testing.B) {
	runChurn(b, churnService(b, 0))
}

// BenchmarkServingMutationChurnGlobalGen: the same workload under the
// pre-sharding global-generation policy (every friend compaction drops
// the whole fleet) — the baseline edge scoping is measured against.
func BenchmarkServingMutationChurnGlobalGen(b *testing.B) {
	runChurn(b, churnService(b, -1))
}
