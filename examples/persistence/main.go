// Example persistence: the crash-safe service. Every mutation is
// write-ahead logged before it is applied; checkpoints fold state into
// an atomic snapshot; reopening the directory recovers exactly the
// acknowledged state. The example simulates a crash by dropping the
// handle without checkpointing, then recovers.
//
//	go run ./examples/persistence
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/durable"
	"repro/internal/search"
)

func main() {
	dir, err := os.MkdirTemp("", "friendsearch-persist")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("durable state under %s\n\n", dir)

	cfg := durable.DefaultConfig()
	cfg.CheckpointEvery = 0 // manual checkpoints, to show the mechanics

	// Session 1: build a small world, checkpoint midway, keep writing,
	// then "crash" (close without checkpointing the tail).
	svc, err := durable.Open(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	must(svc.Befriend("alice", "bob", 0.9))
	must(svc.Befriend("bob", "carol", 0.8))
	must(svc.Tag("bob", "luigis", "pizza"))
	must(svc.Tag("carol", "marios", "pizza"))

	must(svc.Checkpoint())
	fmt.Println("checkpoint taken after 4 mutations")

	must(svc.Befriend("alice", "dave", 0.7))
	must(svc.Tag("dave", "sushiko", "sushi"))
	must(svc.Tag("dave", "marios", "pizza"))
	st := svc.Stats()
	fmt.Printf("pre-crash:  users=%d items=%d log-tail=%d records past the snapshot\n",
		st.Users, st.Items, st.WritesSinceCheckpoint)
	must(svc.Close()) // a real crash would skip even this; the WAL is already synced

	// Session 2: recovery = snapshot load + log-tail replay.
	svc, err = durable.Open(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	st = svc.Stats()
	fmt.Printf("recovered:  users=%d items=%d (replayed %d log records)\n\n",
		st.Users, st.Items, st.RecoveredRecords)

	resp, err := svc.Do(context.Background(), search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice's pizza ranking after recovery:")
	for i, r := range resp.Results {
		fmt.Printf("  %d. %-8s %.4f\n", i+1, r.Item, r.Score)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
