// Friendrec: item discovery powered by the social neighbourhood. Builds
// a flickr-like corpus, picks a mid-connectivity user, and prints what
// the system would recommend to them — each suggestion explained by the
// friends whose tagging produced it — plus "people to follow".
//
// Run with:
//
//	go run ./examples/friendrec
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/proximity"
	"repro/internal/recommend"
)

func main() {
	log.SetFlags(0)

	ds, err := gen.Generate(gen.FlickrParams().Scale(0.25), 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s — %d users, %d triples\n\n",
		ds.Name, ds.Graph.NumUsers(), ds.Store.NumTriples())

	cfg := core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      1.0,
	}
	engine, err := core.NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rec := recommend.New(engine)

	seeker := ds.Graph.DegreePercentileUser(60)
	fmt.Printf("recommendations for user %d (%d friends):\n\n",
		seeker, ds.Graph.Degree(seeker))

	recs, err := rec.Recommend(seeker, recommend.Params{K: 5, MaxReasons: 2})
	if err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		fmt.Println("  (nothing to recommend — neighbourhood inactive)")
	}
	for i, r := range recs {
		fmt.Printf("%d. item %-6d score %.3f\n", i+1, r.Item, r.Score)
		for _, reason := range r.Reasons {
			fmt.Printf("     because user %d tagged it with tag %d (weight %.3f)\n",
				reason.User, reason.Tag, reason.Contribution)
		}
	}

	fmt.Println()
	fmt.Println("people to follow (proximity × taste overlap):")
	similar, err := rec.SimilarUsers(seeker, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, u := range similar {
		fmt.Printf("%d. user %-6d score %.3f (%d friends)\n",
			i+1, u.User, u.Score, ds.Graph.Degree(u.User))
	}
}
