// Influence: who shapes a user's search results? For one seeker and one
// query, this example decomposes each top answer into per-friend
// contributions (σ(s,v)·tf) and contrasts the max-product proximity
// against random-walk-with-restart — the ablation of the two σ choices.
//
// Run with:
//
//	go run ./examples/influence
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

func main() {
	log.SetFlags(0)

	ds, err := gen.Generate(gen.TwitterParams().Scale(0.25), 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      1.0,
	}
	engine, err := core.NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		log.Fatal(err)
	}

	seeker := ds.Graph.DegreePercentileUser(80)
	wl, err := gen.Workload(ds, gen.WorkloadParams{
		NumQueries: 1, TagsPerQuery: 2, NeighborhoodBias: 1, SeekerPercentile: 80,
	}, 9)
	if err != nil {
		log.Fatal(err)
	}
	tags := wl[0].Tags

	q := core.Query{Seeker: seeker, Tags: tags, K: 3}
	ans, err := engine.SocialMerge(q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeker %d, tags %v — top %d items and who influenced them:\n\n",
		seeker, tags, len(ans.Results))

	prox, err := proximity.All(ds.Graph, seeker, cfg.Proximity)
	if err != nil {
		log.Fatal(err)
	}
	for rank, r := range ans.Results {
		fmt.Printf("%d. item %d (score %.3f)\n", rank+1, r.Item, r.Score)
		for _, c := range contributors(ds.Store, prox, r.Item, tags, 3) {
			fmt.Printf("     user %-6d sigma %.3f contributed %.3f\n", c.user, c.sigma, c.mass)
		}
	}

	// Contrast the two proximity models for the same seeker.
	fmt.Println()
	fmt.Println("proximity model comparison (top-5 most influential users):")
	rwr, err := proximity.RWR(ds.Graph, seeker, proximity.DefaultRWRParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s %s\n", "max-product", "random-walk-with-restart")
	mp, rw := topUsers(prox, seeker, 5), topUsers(rwr, seeker, 5)
	for i := 0; i < 5; i++ {
		fmt.Printf("  user %-6d σ=%.3f      user %-6d π=%.4f\n",
			mp[i].user, mp[i].sigma, rw[i].user, rw[i].sigma)
	}
}

type contribution struct {
	user  graph.UserID
	sigma float64
	mass  float64
}

func contributors(store *tagstore.Store, prox []float64, item tagstore.ItemID, tags []tagstore.TagID, k int) []contribution {
	var out []contribution
	for u, sigma := range prox {
		if sigma == 0 {
			continue
		}
		var mass float64
		for _, t := range tags {
			if tf := store.TF(int32(u), item, t); tf > 0 {
				mass += sigma * float64(tf)
			}
		}
		if mass > 0 {
			out = append(out, contribution{user: graph.UserID(u), sigma: sigma, mass: mass})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].mass != out[j].mass {
			return out[i].mass > out[j].mass
		}
		return out[i].user < out[j].user
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func topUsers(prox []float64, seeker graph.UserID, k int) []contribution {
	var out []contribution
	for u, p := range prox {
		if graph.UserID(u) != seeker && p > 0 {
			out = append(out, contribution{user: graph.UserID(u), sigma: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].sigma != out[j].sigma {
			return out[i].sigma > out[j].sigma
		}
		return out[i].user < out[j].user
	})
	for len(out) < k {
		out = append(out, contribution{})
	}
	return out[:k]
}
