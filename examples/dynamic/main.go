// Dynamic: an evolving network session. Starts from a base corpus,
// watches a seeker's answer change live as (a) a friend tags something
// new and (b) the seeker makes a new friend, with the overlay's
// mutation/compaction cycle and a serving-layer cache that must be
// invalidated when the network changes.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/overlay"
	"repro/internal/proximity"
	"repro/internal/search"
	"repro/internal/tagstore"
)

func main() {
	log.SetFlags(0)

	ds, err := gen.Generate(gen.DeliciousParams().Scale(0.1), 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      1,
	}
	o, err := overlay.New(ds.Graph, ds.Store)
	if err != nil {
		log.Fatal(err)
	}
	oe, err := overlay.NewEngine(o, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}

	seeker := ds.Graph.DegreePercentileUser(70)
	wl, err := gen.Workload(ds, gen.WorkloadParams{
		NumQueries: 1, TagsPerQuery: 2, NeighborhoodBias: 1, SeekerPercentile: 70,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	tags := wl[0].Tags
	q := core.Query{Seeker: seeker, Tags: tags, K: 5}

	show := func(label string) core.Answer {
		// RefineScores: report exact scores so answers are comparable
		// across snapshots (plain runs report certified lower bounds).
		ans, err := oe.SocialMerge(q, core.Options{RefineScores: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		for i, r := range ans.Results {
			fmt.Printf("  %d. item %-6d score %.3f\n", i+1, r.Item, r.Score)
		}
		fmt.Println()
		return ans
	}

	fmt.Printf("seeker %d, tags %v on an evolving network\n\n", seeker, tags)
	before := show("initial answer")

	// A close friend discovers a brand-new item and tags it heavily.
	nbrs, wts := ds.Graph.Neighbors(seeker)
	friend := nbrs[0]
	fw := wts[0]
	newItem := o.AddItem()
	for i := 0; i < 12; i++ {
		if err := oe.Tag(friend, newItem, tags[i%2]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("friend %d (weight %.2f) tags new item %d twelve times with tags %v\n",
		friend, fw, newItem, tags)
	show("before compaction (unchanged — mutations are pending)")
	if err := oe.Compact(); err != nil {
		log.Fatal(err)
	}
	after := show("after compaction")

	entered := false
	for i, r := range after.Results {
		if r.Item == newItem {
			fmt.Printf("→ the friend's discovery entered the answer at rank %d\n\n", i+1)
			entered = true
		}
	}
	if !entered {
		fmt.Println("→ (discovery below the top-k on this seed)")
	}
	_ = before

	// Serving layer: cached horizons must be invalidated on change. The
	// executor speaks the canonical request/response API at the id level
	// and reports cache provenance through Explain.
	g, s := o.Snapshot()
	eng, err := core.NewEngine(g, s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	x, err := exec.New(eng, exec.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	req := search.Request{
		Seeker:  fmt.Sprint(seeker),
		Tags:    []string{fmt.Sprint(tags[0]), fmt.Sprint(tags[1])},
		K:       5,
		Explain: true,
	}
	ctx := context.Background()
	if _, err := x.Do(ctx, req); err != nil {
		log.Fatal(err)
	}
	resp, err := x.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	st := x.Stats()
	fmt.Printf("serving cache: %d hit(s), %d miss(es) for the repeated query (cache_hit=%v, horizon=%d users)\n",
		st.Hits, st.Misses, resp.Explain.CacheHit, resp.Explain.HorizonUsers)
	x.Invalidate(seeker)
	fmt.Println("network changed again → seeker's horizon invalidated; next query re-expands")

	_ = tagstore.TagID(0)
}
