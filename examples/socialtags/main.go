// Socialtags: a del.icio.us-style bookmark search session over a
// generated corpus. It builds the corpus in memory, then runs the same
// multi-tag query for three different seekers — a loner, an average
// user, and a hub — showing how the same query returns different,
// personally relevant answers, and what each answer cost.
//
// Run with:
//
//	go run ./examples/socialtags
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

func main() {
	log.SetFlags(0)

	params := gen.DeliciousParams().Scale(0.25) // 500 users: quick to build
	ds, err := gen.Generate(params, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s — %d users, %d edges, %d triples\n\n",
		ds.Name, ds.Graph.NumUsers(), ds.Graph.NumEdges(), ds.Store.NumTriples())

	cfg := core.Config{
		Proximity: proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:      1.0,
	}
	engine, err := core.NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Query the two globally hottest tags — the worst case for
	// personalization to matter, and the best showcase for it.
	tags := hottestTags(ds.Store, 2)
	fmt.Printf("query tags: %v (the two most-used tags)\n\n", tags)

	for _, pct := range []int{5, 50, 99} {
		seeker := ds.Graph.DegreePercentileUser(pct)
		q := core.Query{Seeker: seeker, Tags: tags, K: 5}
		ans, err := engine.SocialMerge(q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seeker at degree percentile %d (user %d, %d friends):\n",
			pct, seeker, ds.Graph.Degree(seeker))
		for i, r := range ans.Results {
			fmt.Printf("  %d. item %-6d score %.3f\n", i+1, r.Item, r.Score)
		}
		fmt.Printf("  certified exact: %v; consulted %d users, %d list accesses\n\n",
			ans.Exact, ans.UsersSettled, ans.Access.Total())
	}

	// Show the non-personalized ranking once for contrast.
	g, err := engine.GlobalTopK(core.Query{Seeker: 0, Tags: tags, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("global (non-personalized) ranking of the same query:")
	for i, r := range g.Results {
		fmt.Printf("  %d. item %-6d tf %.0f\n", i+1, r.Item, r.Score)
	}
}

func hottestTags(s *tagstore.Store, n int) []tagstore.TagID {
	type tc struct {
		t  tagstore.TagID
		tf int64
	}
	var all []tc
	for t := 0; t < s.NumTags(); t++ {
		var sum int64
		for _, p := range s.GlobalList(tagstore.TagID(t)) {
			sum += int64(p.TF)
		}
		if sum > 0 {
			all = append(all, tc{tagstore.TagID(t), sum})
		}
	}
	// selection sort of the head: n is tiny
	out := make([]tagstore.TagID, 0, n)
	for len(out) < n && len(all) > 0 {
		best := 0
		for i := range all {
			if all[i].tf > all[best].tf {
				best = i
			}
		}
		out = append(out, all[best].t)
		all = append(all[:best], all[best+1:]...)
	}
	return out
}
