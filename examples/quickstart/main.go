// Quickstart: build a small social tagging world by hand, then answer a
// personalized top-k query with the three algorithms and compare them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tagstore"
)

func main() {
	log.SetFlags(0)

	// A six-person network: alice's close friends are bob and carol;
	// dave and erin are friends-of-friends; frank is a stranger.
	const (
		alice = iota
		bob
		carol
		dave
		erin
		frank
	)
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank"}

	gb := graph.NewBuilder(6)
	gb.AddEdge(alice, bob, 0.9)
	gb.AddEdge(alice, carol, 0.7)
	gb.AddEdge(bob, dave, 0.8)
	gb.AddEdge(carol, erin, 0.6)
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Items are restaurants; the single tag is "pizza".
	const (
		luigis = iota
		marios
		chains
	)
	items := []string{"luigi's", "mario's", "chain-pizza"}
	const pizza = 0

	tb := tagstore.NewBuilder(6, 3, 1)
	tb.Add(bob, luigis, pizza) // close friend loves luigi's
	tb.AddCount(carol, luigis, pizza, 2)
	tb.Add(dave, marios, pizza)          // friend-of-friend
	tb.AddCount(frank, chains, pizza, 9) // stranger spams the chain
	store, err := tb.Build()
	if err != nil {
		log.Fatal(err)
	}

	engine, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	q := core.Query{Seeker: alice, Tags: []tagstore.TagID{pizza}, K: 3}

	fmt.Println("alice asks: where should I eat pizza?")
	fmt.Println()

	merge, err := engine.SocialMerge(q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SocialMerge (personalized, certified exact=%v):\n", merge.Exact)
	printResults(merge, items)

	global, err := engine.GlobalTopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GlobalTopK (what everyone else gets):")
	printResults(global, items)

	fmt.Printf("users consulted by SocialMerge: %d of %d (%s's neighbourhood)\n",
		merge.UsersSettled, g.NumUsers(), names[alice])
	fmt.Println()
	fmt.Println("The stranger's chain restaurant tops the global ranking, but")
	fmt.Println("alice's answer is driven by her friends: luigi's wins.")
}

func printResults(ans core.Answer, items []string) {
	for i, r := range ans.Results {
		fmt.Printf("  %d. %-12s score %.3f\n", i+1, items[r.Item], r.Score)
	}
	fmt.Println()
}
