// Quickstart: build a small social tagging world through the
// name-addressed service, then answer a personalized top-k query with
// the canonical request/response API — comparing planned and
// pure-global executions, and dumping the Explain report that shows how
// the engine answered.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/search"
	"repro/internal/social"
)

func main() {
	log.SetFlags(0)

	svc, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A six-person network: alice's close friends are bob and carol;
	// dave and erin are friends-of-friends; frank is a stranger.
	friends := []struct {
		a, b string
		w    float64
	}{
		{"alice", "bob", 0.9}, {"alice", "carol", 0.7},
		{"bob", "dave", 0.8}, {"carol", "erin", 0.6},
	}
	for _, f := range friends {
		if err := svc.Befriend(f.a, f.b, f.w); err != nil {
			log.Fatal(err)
		}
	}
	// Items are restaurants; the single tag is "pizza". The stranger
	// spams the chain nine times.
	tags := []struct {
		user, item string
		times      int
	}{
		{"bob", "luigi's", 1}, {"carol", "luigi's", 2},
		{"dave", "mario's", 1}, {"frank", "chain-pizza", 9},
	}
	for _, tg := range tags {
		for i := 0; i < tg.times; i++ {
			if err := svc.Tag(tg.user, tg.item, "pizza"); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Fold the pending writes into the queryable snapshot (the default
	// config batches compactions).
	if err := svc.Flush(); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Println("alice asks: where should I eat pizza?")
	fmt.Println()

	// Planned execution with an explainable answer.
	resp, err := svc.Do(ctx, search.Request{
		Seeker:  "alice",
		Tags:    []string{"pizza"},
		K:       3,
		Explain: true, // Mode defaults to auto: the planner chooses
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auto mode (the planner chooses):")
	printResults(resp.Results)
	printExplain(resp.Explain)

	// The same query, β = 0: pure global popularity, what everyone gets.
	zero := 0.0
	global, err := svc.Do(ctx, search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 3, Beta: &zero,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("beta=0 (what everyone else gets):")
	printResults(global.Results)

	fmt.Println("The stranger's chain restaurant tops the global ranking, but")
	fmt.Println("alice's answer is driven by her friends: luigi's wins.")
}

func printResults(rs []search.Result) {
	for i, r := range rs {
		fmt.Printf("  %d. %-12s score %.3f\n", i+1, r.Item, r.Score)
	}
	fmt.Println()
}

func printExplain(ex *search.Explain) {
	fmt.Printf("  explain: algorithm=%s planned=%v exact=%v\n", ex.Algorithm, ex.Planned, ex.Exact)
	fmt.Printf("           horizon=%d users, cache_hit=%v (generation %d)\n",
		ex.HorizonUsers, ex.CacheHit, ex.CacheGeneration)
	fmt.Printf("           certified score bound=%.3f, settled=%d, accesses seq=%d rand=%d\n",
		ex.ScoreBound, ex.UsersSettled, ex.SequentialAccesses, ex.RandomAccesses)
	if len(ex.Estimates) > 0 {
		fmt.Printf("           planner estimates: %v\n", ex.Estimates)
	}
	fmt.Println()
}
