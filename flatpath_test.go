package repro

// Tests for the zero-allocation flat-graph read path: one asserts the
// warm serving path literally does not allocate, the other is the
// cross-layout property test — the flat (materialized-horizon) path
// must answer bit-identically to the pointer (lazy-expansion) path on
// random graphs across random mutation sequences.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/proximity"
	"repro/internal/search"
	"repro/internal/social"
)

// TestCachedReadPathZeroAlloc: after the seeker cache and the arenas
// are warm, a full serving workload through DoInto must perform zero
// heap allocations. This is the programmatic twin of benchgate's
// allocs/op gate on BenchmarkServingCachedSearch.
func TestCachedReadPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	svc, queries := servingService(t, 0)
	reqs := servingRequests(queries)
	var resp search.Response
	ctx := context.Background()
	// Two warm passes: the first fills the seeker cache, the second
	// exercises every pooled arena so all reusable buffers exist at
	// their steady-state capacity.
	for pass := 0; pass < 2; pass++ {
		for i := range reqs {
			if err := svc.DoInto(ctx, reqs[i], &resp); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Any GC cycle may empty a sync.Pool; pin collection off so a
	// mid-measurement collection cannot charge a pool refill to us.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(10, func() {
		for i := range reqs {
			if err := svc.DoInto(ctx, reqs[i], &resp); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("warm cached read path allocated %.2f times per %d-query workload, want 0", avg, len(reqs))
	}
}

// TestPropertyFlatHorizonMatchesPointerPath: on random graphs mutated
// in random rounds, a ModeExact answer served from the flat
// materialized horizon (cache miss installing it, then a cache hit
// replaying it) must equal the answer from the lazy pointer-graph
// expansion (NoCache) bit-for-bit: same items, same float64 scores,
// same certified ScoreBound, same Exact flag. Each round ends with a
// concurrent DoInto storm so `go test -race` exercises the pooled
// arenas under contention.
func TestPropertyFlatHorizonMatchesPointerPath(t *testing.T) {
	const (
		users = 24
		items = 40
		tags  = 5
	)
	ctx := context.Background()
	user := func(i int) string { return fmt.Sprintf("u%d", i) }
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := social.DefaultServiceConfig()
		cfg.Proximity = proximity.Params{Alpha: 0.7, SelfWeight: 1, MinSigma: 0.02}
		cfg.AutoCompactEvery = 0 // every write compacts and invalidates
		cfg.SeekerCacheSize = 256
		svc, err := social.NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mutate := func(n int) {
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					a, b := rng.Intn(users), rng.Intn(users)
					if a == b {
						continue
					}
					if err := svc.Befriend(user(a), user(b), 0.1+0.8*rng.Float64()); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := svc.Tag(user(rng.Intn(users)), fmt.Sprintf("i%d", rng.Intn(items)), fmt.Sprintf("t%d", rng.Intn(tags))); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := svc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		mutate(120)
		for round := 0; round < 5; round++ {
			for s := 0; s < users; s++ {
				qtags := []string{fmt.Sprintf("t%d", rng.Intn(tags))}
				if rng.Intn(3) == 0 {
					qtags = append(qtags, fmt.Sprintf("t%d", rng.Intn(tags)))
				}
				base := search.Request{
					Seeker:  user(s),
					Tags:    qtags,
					K:       1 + rng.Intn(10),
					Mode:    search.ModeExact,
					Explain: true,
				}
				ptrReq := base
				ptrReq.NoCache = true
				ptr, err := svc.Do(ctx, ptrReq) // lazy pointer-graph expansion
				if err != nil {
					t.Fatal(err)
				}
				miss, err := svc.Do(ctx, base) // miss: materialize + install flat horizon
				if err != nil {
					t.Fatal(err)
				}
				hit, err := svc.Do(ctx, base) // hit: replay the cached flat horizon
				if err != nil {
					t.Fatal(err)
				}
				for _, flat := range [...]struct {
					name string
					resp search.Response
				}{{"miss", miss}, {"hit", hit}} {
					if len(flat.resp.Results) != len(ptr.Results) {
						t.Fatalf("seed %d round %d %s/%v k=%d (%s): %d results flat vs %d pointer",
							seed, round, base.Seeker, qtags, base.K, flat.name, len(flat.resp.Results), len(ptr.Results))
					}
					for i := range ptr.Results {
						if flat.resp.Results[i] != ptr.Results[i] {
							t.Fatalf("seed %d round %d %s/%v k=%d (%s): result %d = %+v flat vs %+v pointer",
								seed, round, base.Seeker, qtags, base.K, flat.name, i, flat.resp.Results[i], ptr.Results[i])
						}
					}
					if flat.resp.Explain.ScoreBound != ptr.Explain.ScoreBound {
						t.Fatalf("seed %d round %d %s/%v (%s): ScoreBound %v flat vs %v pointer",
							seed, round, base.Seeker, qtags, flat.name, flat.resp.Explain.ScoreBound, ptr.Explain.ScoreBound)
					}
					if flat.resp.Explain.Exact != ptr.Explain.Exact {
						t.Fatalf("seed %d round %d %s/%v (%s): Exact %v flat vs %v pointer",
							seed, round, base.Seeker, qtags, flat.name, flat.resp.Explain.Exact, ptr.Explain.Exact)
					}
				}
			}
			// Concurrent storm over the pooled path: answers are already
			// verified above; this exists so -race sees the arenas under
			// contention.
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wrng := rand.New(rand.NewSource(seed<<8 | int64(w)))
					var resp search.Response
					for i := 0; i < 32; i++ {
						req := search.Request{
							Seeker: user(wrng.Intn(users)),
							Tags:   []string{fmt.Sprintf("t%d", wrng.Intn(tags))},
							K:      1 + wrng.Intn(10),
							Mode:   search.ModeExact,
						}
						if err := svc.DoInto(ctx, req, &resp); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			mutate(30)
		}
	}
}
