package repro

// End-to-end integration across the storage and query stack: a corpus
// enters as TSV (the real-data path), round-trips through the binary
// index format, is reloaded with bounded memory through the buffer
// pool, and is then queried by every portfolio algorithm — directly
// and through the planner — with all answers agreeing.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/load"
	"repro/internal/pagestore"
	"repro/internal/planner"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

func TestIntegrationTSVToPlannedQuery(t *testing.T) {
	// 1. A small named corpus arrives as TSV.
	friends := `alice	bob	0.9
bob	carol	0.8
alice	dave	0.5
carol	erin	0.7
`
	tags := `bob	luigis	pizza	2
carol	marios	pizza
dave	marios	pizza
erin	luigis	pizza
erin	sushiko	sushi
alice	sushiko	sushi
`
	c, err := load.Read(strings.NewReader(friends), strings.NewReader(tags))
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist to the binary format and reload through the buffer
	// pool with a pathologically small capacity.
	path := filepath.Join(t.TempDir(), "corpus.frnd")
	if err := index.WriteFile(path, c.Graph, c.Store); err != nil {
		t.Fatal(err)
	}
	g, store, stats, err := index.ReadPagedFile(path, pagestore.Options{PageSize: 64, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses == 0 {
		t.Fatal("paged load recorded no IO")
	}

	// 3. Build the engine with the full portfolio attached.
	e, err := core.NewEngine(g, store, core.Config{
		Proximity: proximity.Params{Alpha: 0.8, SelfWeight: 1},
		Beta:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachItemIndex(core.BuildItemIndex(store))

	alice, ok := c.Names.Users.ID("alice")
	if !ok {
		t.Fatal("alice lost in translation")
	}
	pizza, ok := c.Names.Tags.ID("pizza")
	if !ok {
		t.Fatal("pizza lost in translation")
	}
	q := core.Query{Seeker: alice, Tags: []tagstore.TagID{pizza}, K: 3}

	// 4. Every algorithm must return the same certified item set.
	ref, err := e.ExactSocial(q)
	if err != nil {
		t.Fatal(err)
	}
	refSet := make(map[int32]bool)
	for _, r := range ref.Results {
		refSet[r.Item] = true
	}
	algos := map[string]func() (core.Answer, error){
		"SocialMerge":  func() (core.Answer, error) { return e.SocialMerge(q, core.Options{}) },
		"ContextMerge": func() (core.Answer, error) { return e.ContextMerge(q, core.Options{}) },
		"SocialTA":     func() (core.Answer, error) { return e.SocialTA(q, core.Options{}) },
	}
	for name, run := range algos {
		ans, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ans.Exact || len(ans.Results) != len(ref.Results) {
			t.Fatalf("%s: %+v vs ref %+v", name, ans.Results, ref.Results)
		}
		for _, r := range ans.Results {
			if !refSet[r.Item] {
				t.Fatalf("%s returned item %d outside the exact set", name, r.Item)
			}
		}
	}

	// 5. The planner must execute the same query correctly whichever
	// algorithm it picks, before and after calibration.
	p, err := planner.New(e)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		ans, plan, err := p.Execute(q)
		if err != nil {
			t.Fatalf("%s planned %v: %v", stage, plan.Alg, err)
		}
		if !ans.Exact {
			t.Fatalf("%s planned %v: inexact answer", stage, plan.Alg)
		}
		for _, r := range ans.Results {
			if !refSet[r.Item] {
				t.Fatalf("%s planned %v: item %d outside exact set", stage, plan.Alg, r.Item)
			}
		}
	}
	check("uncalibrated")
	var calib []core.Query
	for i := 0; i < 12; i++ {
		calib = append(calib, core.Query{Seeker: alice, Tags: []tagstore.TagID{pizza}, K: 1 + i%4})
	}
	if err := p.Calibrate(calib); err != nil {
		t.Fatal(err)
	}
	check("calibrated")

	// 6. Names translate back: the expected winner is luigis
	// (bob 0.72·2 + erin 0.403·1 = 1.84 vs marios 0.58+0.4 = 0.98).
	winner, _ := c.Names.Items.Name(ref.Results[0].Item)
	if winner != "luigis" {
		rows := make([]string, 0, len(ref.Results))
		for _, r := range ref.Results {
			n, _ := c.Names.Items.Name(r.Item)
			rows = append(rows, fmt.Sprintf("%s=%.3f", n, r.Score))
		}
		t.Fatalf("winner = %s (%s), want luigis", winner, strings.Join(rows, " "))
	}
}
