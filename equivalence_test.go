package repro

// Cross-algorithm equivalence properties: on randomized corpora the
// four exact algorithms — SocialMerge, ContextMerge, SocialTA and
// ExactSocial — must return the same top-k item set, and the cached
// serving path (seeker horizons via internal/qcache inside
// internal/social) must keep agreeing with exact ground truth through
// interleaved friend/tag mutations.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/planner"
	"repro/internal/proximity"
	"repro/internal/server"
	"repro/internal/social"
	"repro/internal/tagstore"
	"repro/internal/topk"
	"repro/internal/vocab"
)

// equivCorpus builds a small randomized corpus for a seed.
func equivCorpus(t testing.TB, seed int64) *gen.Dataset {
	t.Helper()
	p := gen.CorpusParams{
		Name: "equiv",
		Graph: gen.GraphParams{
			Kind: gen.BarabasiAlbert, NumUsers: 60, M: 2,
			MinWeight: 0.3, MaxWeight: 1,
		},
		NumItems:       120,
		NumTags:        20,
		TriplesPerUser: 12,
		TagZipfS:       1.1,
		ItemZipfS:      1.1,
		Homophily:      0.5,
	}
	ds, err := gen.Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// sameTopKSet checks an answer against exact ground truth at the set
// level: every returned item must carry an exact score matching the
// exact top-k score multiset (ties at the boundary may swap items, so
// positions and identities beyond the score multiset are not compared).
func sameTopKSet(t testing.TB, label string, e *core.Engine, q core.Query, got core.Answer) bool {
	t.Helper()
	full, err := e.ExactSocial(core.Query{Seeker: q.Seeker, Tags: q.Tags, K: e.Store().NumItems()})
	if err != nil {
		t.Logf("%s: full exact: %v", label, err)
		return false
	}
	exactScore := make(map[int32]float64, len(full.Results))
	for _, r := range full.Results {
		exactScore[r.Item] = r.Score
	}
	wantLen := q.K
	if len(full.Results) < wantLen {
		wantLen = len(full.Results)
	}
	if len(got.Results) != wantLen {
		t.Logf("%s: %d results, want %d", label, len(got.Results), wantLen)
		return false
	}
	scores := make([]float64, 0, wantLen)
	for i, r := range got.Results {
		es, ok := exactScore[r.Item]
		if !ok {
			t.Logf("%s: rank %d item %d not in exact answer", label, i, r.Item)
			return false
		}
		if r.Score > es+1e-9 {
			t.Logf("%s: rank %d reported %g > exact %g", label, i, r.Score, es)
			return false
		}
		scores = append(scores, es)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	for i, es := range scores {
		if diff := es - full.Results[i].Score; diff > 1e-9 || diff < -1e-9 {
			t.Logf("%s: sorted rank %d exact %g, want %g", label, i, es, full.Results[i].Score)
			return false
		}
	}
	return true
}

// TestPropertyAllAlgorithmsAgree: the four exact algorithms and the
// cached-horizon execution return the same top-k sets on randomized
// corpora, across proximity/beta settings.
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := equivCorpus(t, seed)
		cfg := core.Config{
			Proximity: proximity.Params{
				Alpha:      []float64{1, 0.8, 0.6}[rng.Intn(3)],
				SelfWeight: 1,
				MinSigma:   0.01,
			},
			Beta: []float64{1, 0.7, 0.3}[rng.Intn(3)],
		}
		e, err := core.NewEngine(ds.Graph, ds.Store, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		e.AttachItemIndex(core.BuildItemIndex(ds.Store))
		for trial := 0; trial < 3; trial++ {
			q := core.Query{
				Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
				Tags: []tagstore.TagID{
					tagstore.TagID(rng.Intn(ds.Store.NumTags())),
					tagstore.TagID(rng.Intn(ds.Store.NumTags())),
				},
				K: 1 + rng.Intn(10),
			}
			sm, err := e.SocialMerge(q, core.Options{RefineScores: true})
			if err != nil || !sm.Exact || !sameTopKSet(t, "SocialMerge", e, q, sm) {
				t.Logf("seed %d trial %d: SocialMerge (err %v)", seed, trial, err)
				return false
			}
			cm, err := e.ContextMerge(q, core.Options{})
			if err != nil || !cm.Exact || !sameTopKSet(t, "ContextMerge", e, q, cm) {
				t.Logf("seed %d trial %d: ContextMerge (err %v)", seed, trial, err)
				return false
			}
			ta, err := e.SocialTA(q, core.Options{})
			if err != nil || !ta.Exact || !sameTopKSet(t, "SocialTA", e, q, ta) {
				t.Logf("seed %d trial %d: SocialTA (err %v)", seed, trial, err)
				return false
			}
			// The cached serving path: materialize once, query twice
			// (second use exercises horizon reuse).
			h, err := e.MaterializeHorizon(q.Seeker, 0)
			if err != nil {
				t.Logf("seed %d trial %d: MaterializeHorizon: %v", seed, trial, err)
				return false
			}
			for rep := 0; rep < 2; rep++ {
				hm, err := e.SocialMergeWithHorizon(q, h, core.Options{RefineScores: true})
				if err != nil || !sameTopKSet(t, "SocialMergeWithHorizon", e, q, hm) {
					t.Logf("seed %d trial %d rep %d: horizon path (err %v)", seed, trial, rep, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestV2ModeEquivalence: over a randomized corpus served via HTTP, a
// /v2 query with mode=exact returns exactly what the ExactSocial oracle
// computes on the same snapshot, and mode=auto returns what the
// cost-based planner path computes — same chosen algorithm, same
// results — so the v2 modes are faithful names for the engine paths
// they promise.
func TestV2ModeEquivalence(t *testing.T) {
	ds := equivCorpus(t, 42)
	prox := proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.01}
	cfg := social.DefaultServiceConfig()
	cfg.Proximity = prox

	// Name the generated id-space corpus and restore it as a service.
	names := vocab.NewSet()
	for i := 0; i < ds.Graph.NumUsers(); i++ {
		names.Users.MustAdd(fmt.Sprintf("u%d", i))
	}
	for i := 0; i < ds.Store.NumItems(); i++ {
		names.Items.MustAdd(fmt.Sprintf("i%d", i))
	}
	for i := 0; i < ds.Store.NumTags(); i++ {
		names.Tags.MustAdd(fmt.Sprintf("t%d", i))
	}
	svc, err := social.Restore(cfg, ds.Graph, ds.Store, names)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Store, core.Config{Proximity: prox, Beta: cfg.Beta})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := planner.New(eng)
	if err != nil {
		t.Fatal(err)
	}

	post := func(body map[string]interface{}) (results []struct {
		Item  string  `json:"item"`
		Score float64 `json:"score"`
	}, algorithm string) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v2/search", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("/v2/search: %d %s", rec.Code, rec.Body)
		}
		var resp struct {
			Results []struct {
				Item  string  `json:"item"`
				Score float64 `json:"score"`
			} `json:"results"`
			Explain *struct {
				Algorithm string `json:"algorithm"`
			} `json:"explain"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Explain == nil {
			t.Fatal("explain missing")
		}
		return resp.Results, resp.Explain.Algorithm
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		seeker := rng.Intn(ds.Graph.NumUsers())
		tag := rng.Intn(ds.Store.NumTags())
		k := 1 + rng.Intn(8)
		q := core.Query{Seeker: graph.UserID(seeker), Tags: []tagstore.TagID{tagstore.TagID(tag)}, K: k}
		body := map[string]interface{}{
			"seeker": fmt.Sprintf("u%d", seeker), "tags": []string{fmt.Sprintf("t%d", tag)},
			"k": k, "explain": true,
		}

		// mode=exact must reproduce the ExactSocial oracle: same items,
		// same exact scores.
		body["mode"] = "exact"
		got, _ := post(body)
		oracle, err := eng.ExactSocial(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(oracle.Results) {
			t.Fatalf("trial %d exact: %d results, oracle %d", trial, len(got), len(oracle.Results))
		}
		for i, r := range got {
			want := oracle.Results[i]
			if r.Item != fmt.Sprintf("i%d", want.Item) || !approxEqual(r.Score, want.Score) {
				t.Fatalf("trial %d exact rank %d: got %v, oracle item %d score %g",
					trial, i, r, want.Item, want.Score)
			}
		}

		// mode=auto must follow the planner path: the same algorithm the
		// planner picks, and that algorithm's answer.
		body["mode"] = "auto"
		got, alg := post(body)
		ans, plan, err := pl.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if alg != plan.Alg.String() {
			t.Fatalf("trial %d auto: served by %s, planner picked %s", trial, alg, plan.Alg)
		}
		if len(got) != len(ans.Results) {
			t.Fatalf("trial %d auto: %d results, planner %d", trial, len(got), len(ans.Results))
		}
		for i, r := range got {
			want := ans.Results[i]
			if r.Item != fmt.Sprintf("i%d", want.Item) || !approxEqual(r.Score, want.Score) {
				t.Fatalf("trial %d auto rank %d: got %v, planner item %d score %g",
					trial, i, r, want.Item, want.Score)
			}
		}
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestPropertyCachedServiceMatchesExact: a name-addressed service with
// the seeker cache enabled stays consistent with ExactSocial ground
// truth (recomputed from its own snapshot) through a randomized stream
// of interleaved Befriend/Tag mutations and searches.
func TestPropertyCachedServiceMatchesExact(t *testing.T) {
	prox := proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.01}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := social.DefaultServiceConfig()
		cfg.Proximity = prox
		cfg.AutoCompactEvery = 1 + rng.Intn(4)
		cfg.SeekerCacheSize = 4
		svc, err := social.NewService(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		user := func() string { return fmt.Sprintf("u%d", rng.Intn(10)) }
		for step := 0; step < 120; step++ {
			switch rng.Intn(3) {
			case 0:
				a, b := user(), user()
				if a != b {
					if err := svc.Befriend(a, b, 0.2+0.8*rng.Float64()); err != nil {
						t.Logf("seed %d step %d: befriend: %v", seed, step, err)
						return false
					}
				}
			default:
				if err := svc.Tag(user(), fmt.Sprintf("i%d", rng.Intn(15)), fmt.Sprintf("t%d", rng.Intn(3))); err != nil {
					t.Logf("seed %d step %d: tag: %v", seed, step, err)
					return false
				}
			}
			if step%10 != 9 {
				continue
			}
			// Snapshot the service state and verify a search against an
			// independently built exact engine over that same state.
			g, st, names, err := svc.Snapshot()
			if err != nil {
				t.Logf("seed %d step %d: snapshot: %v", seed, step, err)
				return false
			}
			eng, err := core.NewEngine(g, st, core.Config{Proximity: prox, Beta: cfg.Beta})
			if err != nil {
				t.Logf("seed %d step %d: engine: %v", seed, step, err)
				return false
			}
			seeker := user()
			uid, ok := names.Users.ID(seeker)
			if !ok {
				continue
			}
			tag := fmt.Sprintf("t%d", rng.Intn(3))
			tid, ok := names.Tags.ID(tag)
			if !ok {
				continue
			}
			k := 1 + rng.Intn(5)
			got, err := svc.Search(seeker, []string{tag}, k)
			if err != nil {
				t.Logf("seed %d step %d: search: %v", seed, step, err)
				return false
			}
			// Convert named results to id-space and reuse the set check.
			idResults := make([]topk.Result, len(got))
			for i, r := range got {
				id, ok := names.Items.ID(r.Item)
				if !ok {
					t.Logf("seed %d step %d: unknown item %q", seed, step, r.Item)
					return false
				}
				idResults[i] = topk.Result{Item: id, Score: r.Score}
			}
			q := core.Query{Seeker: uid, Tags: []tagstore.TagID{tid}, K: k}
			if !sameTopKSet(t, "cached service", eng, q, core.Answer{Results: idResults}) {
				t.Logf("seed %d step %d: cached service diverged (seeker %s tag %s k %d)", seed, step, seeker, tag, k)
				return false
			}
		}
		st := svc.Stats()
		if st.SeekerCache.Hits+st.SeekerCache.Misses == 0 {
			t.Logf("seed %d: cache never exercised", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
