package repro

// Doc-drift tests: documentation and code must not diverge silently.
// TestDocsFlagDrift pins every cmd/friendserve flag to a mention in
// README.md or docs/; TestDocsStatsKeyDrift pins every stats/replog key
// the fleet documentation names to a key present in a live response
// from an HA front-end. Either failing means a PR changed one side
// without the other.

import (
	"encoding/json"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/server"
	"repro/internal/social"
)

// readAllDocs concatenates README.md and every markdown file under
// docs/ — the corpus a flag mention may live in.
func readAllDocs(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md must exist at the repo root: %v", err)
	}
	sb.Write(readme)
	err = filepath.WalkDir("docs", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".md") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sb.Write(b)
		sb.WriteByte('\n')
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestDocsFlagDrift: every flag cmd/friendserve registers must appear
// (as -name) somewhere in README.md or docs/.
func TestDocsFlagDrift(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("cmd", "friendserve", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Float64|Duration)\("([^"]+)"`)
	var flags []string
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		flags = append(flags, m[1])
	}
	if len(flags) < 10 {
		t.Fatalf("parsed only %d flags from cmd/friendserve/main.go — extraction regex broken?", len(flags))
	}
	docs := readAllDocs(t)
	for _, name := range flags {
		if !strings.Contains(docs, "-"+name) {
			t.Errorf("flag -%s of cmd/friendserve is documented nowhere in README.md or docs/", name)
		}
	}
}

// sectionKeys extracts the backticked identifier-shaped tokens of one
// markdown section (from its heading line to the next heading of the
// same or higher level) — the keys that section claims exist.
func sectionKeys(t *testing.T, md, heading string) []string {
	t.Helper()
	lines := strings.Split(md, "\n")
	level := strings.Count(strings.SplitN(heading, " ", 2)[0], "#")
	start := -1
	for i, l := range lines {
		if strings.TrimSpace(l) == heading {
			start = i + 1
			break
		}
	}
	if start < 0 {
		t.Fatalf("markdown has no %q section", heading)
	}
	var body strings.Builder
	for _, l := range lines[start:] {
		if h := strings.TrimLeft(l, "#"); strings.HasPrefix(l, "#") && len(l)-len(h) <= level {
			break
		}
		body.WriteString(l)
		body.WriteByte('\n')
	}
	ident := regexp.MustCompile("`([A-Za-z][A-Za-z0-9_]*)`")
	seen := map[string]bool{}
	var keys []string
	for _, m := range ident.FindAllStringSubmatch(body.String(), -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			keys = append(keys, m[1])
		}
	}
	return keys
}

// collectKeys gathers every map key in a decoded JSON value,
// recursively.
func collectKeys(v interface{}, into map[string]bool) {
	switch x := v.(type) {
	case map[string]interface{}:
		for k, v2 := range x {
			into[k] = true
			collectKeys(v2, into)
		}
	case []interface{}:
		for _, v2 := range x {
			collectKeys(v2, into)
		}
	}
}

// newLiveHAFrontend stands up a minimal HA front-end for observability
// probing: one live replica, one dead one (so error fields populate),
// and a two-member quorum whose passive peer never campaigns, so the
// front-end under test is always the leader (peer progress populates).
// Returns the front-end's base URL.
func newLiveHAFrontend(t *testing.T) string {
	t.Helper()
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30 // replica mode: broadcast is the heartbeat
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	rep := httptest.NewServer(rsrv)
	t.Cleanup(rep.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // a replica that was never reachable

	var clients []*fleet.Client
	for _, u := range []string{rep.URL, dead.URL} {
		c, err := fleet.NewClient(u, fleet.ClientConfig{Timeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	pool, err := fleet.NewPool(clients, fleet.PoolConfig{
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      1,
		ReviveAfter:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bcast := fleet.NewBroadcaster(clients, fleet.BroadcasterConfig{Window: 2 * time.Millisecond})
	front, err := fleet.NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}

	// Listeners must exist before the nodes (the peer map needs URLs);
	// handlers are swapped in once the nodes exist.
	var mu sync.Mutex
	var feH, peerH http.Handler
	serveVia := func(h *http.Handler) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			cur := *h
			mu.Unlock()
			if cur == nil {
				http.Error(w, "not up yet", http.StatusServiceUnavailable)
				return
			}
			cur.ServeHTTP(w, r)
		}
	}
	feTS := httptest.NewServer(serveVia(&feH))
	t.Cleanup(feTS.Close)
	peerTS := httptest.NewServer(serveVia(&peerH))
	t.Cleanup(peerTS.Close)

	peers := map[string]string{"fe1": feTS.URL, "fe2": peerTS.URL}
	base := t.TempDir()
	node1, err := quorum.Open(quorum.Config{
		ID: "fe1", Peers: peers, Dir: filepath.Join(base, "fe1"),
		ElectionTimeout: 80 * time.Millisecond,
		Heartbeat:       20 * time.Millisecond,
		RPCTimeout:      500 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	node2, err := quorum.Open(quorum.Config{
		ID: "fe2", Peers: peers, Dir: filepath.Join(base, "fe2"),
		ElectionTimeout: 10 * time.Minute, // never campaigns: fe1 stays leader
		Heartbeat:       20 * time.Millisecond,
		RPCTimeout:      500 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := front.UseQuorum(node1); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(front)
	if err != nil {
		t.Fatal(err)
	}
	// The full observability plane, as cmd/friendserve installs it, so
	// the envelope keys the docs name are all live: build + trace + an
	// admission controller, with head sampling on every request.
	srv.SetBuild(obs.NewBuild("fe1"))
	srv.SetTracer(obs.NewTracer(obs.Config{Node: "fe1", SampleEvery: 1}))
	srv.SetAdmission(admission.New(admission.Config{}))
	srv.MountQuorum(node1.Handler())
	mu.Lock()
	feH, peerH = srv, node2.Handler()
	mu.Unlock()
	node1.Start()
	node2.Start()
	t.Cleanup(func() {
		front.Close() // closes node1
		node2.Close()
	})

	deadline := time.Now().Add(10 * time.Second)
	for !node1.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("fe1 never won the election against a passive peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return feTS.URL
}

func getJSONValue(t *testing.T, url string) interface{} {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v interface{}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return v
}

// TestObservabilityDocsKeyDrift: every key docs/observability.md
// pins — /v1/stats envelope keys, /debug/traces record keys, and
// /metrics metric names — must exist in live responses from an HA
// front-end running the full obs plane. A traced request (sampled
// traceparent, so the recorder holds a cross-process-shaped trace) is
// driven first so span-level keys populate.
func TestObservabilityDocsKeyDrift(t *testing.T) {
	md, err := os.ReadFile(filepath.Join("docs", "observability.md"))
	if err != nil {
		t.Fatal(err)
	}
	statsKeys := sectionKeys(t, string(md), "### Stats keys")
	traceKeys := sectionKeys(t, string(md), "### Trace record keys")
	metricNames := sectionKeys(t, string(md), "### Metrics names")
	if len(statsKeys) < 10 || len(traceKeys) < 10 || len(metricNames) < 10 {
		t.Fatalf("extracted %d/%d/%d documented keys — extraction broken?",
			len(statsKeys), len(traceKeys), len(metricNames))
	}

	base := newLiveHAFrontend(t)
	// One traced request, joining an external trace so the flight
	// recorder gets a record with a parented span.
	req, err := http.NewRequest(http.MethodGet, base+"/v1/users", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	live := map[string]bool{}
	collectKeys(getJSONValue(t, base+"/v1/stats"), live)
	for _, k := range statsKeys {
		if !live[k] {
			t.Errorf("documented stats key %q absent from live /v1/stats", k)
		}
	}

	traceLive := map[string]bool{}
	collectKeys(getJSONValue(t, base+"/debug/traces/4bf92f3577b34da6a3ce929d0e0e4736"), traceLive)
	collectKeys(getJSONValue(t, base+"/debug/slowlog"), traceLive)
	for _, k := range traceKeys {
		if !traceLive[k] {
			t.Errorf("documented trace key %q absent from live /debug/traces", k)
		}
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range metricNames {
		if !strings.Contains(string(body), name) {
			t.Errorf("documented metric %q absent from live /metrics", name)
		}
	}
}

// TestDocsStatsKeyDrift: every key named (backticked) in the
// observability sections of docs/fleet.md must exist in a live
// /v1/stats or /v2/replog response from an HA front-end. Live keys are
// polled because some populate asynchronously (probe failures, the
// takeover record committing, peer progress).
func TestDocsStatsKeyDrift(t *testing.T) {
	md, err := os.ReadFile(filepath.Join("docs", "fleet.md"))
	if err != nil {
		t.Fatal(err)
	}
	docKeys := sectionKeys(t, string(md), "## Observability")
	docKeys = append(docKeys, sectionKeys(t, string(md), "### HA knobs and observability")...)
	if len(docKeys) < 15 {
		t.Fatalf("extracted only %d documented keys from docs/fleet.md — extraction broken?", len(docKeys))
	}

	base := newLiveHAFrontend(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		live := map[string]bool{}
		collectKeys(getJSONValue(t, base+"/v1/stats"), live)
		collectKeys(getJSONValue(t, base+"/v2/replog?from=1"), live)
		var missing []string
		for _, k := range docKeys {
			if !live[k] {
				missing = append(missing, k)
			}
		}
		if len(missing) == 0 {
			return
		}
		if time.Now().After(deadline) {
			sort.Strings(missing)
			var got []string
			for k := range live {
				got = append(got, k)
			}
			sort.Strings(got)
			t.Fatalf("documented stats keys absent from live responses: %v\nlive keys: %v", missing, got)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
