// Command datagen generates a synthetic social tagging corpus — or
// imports a real one from TSV files — and writes it to disk in the
// binary index format.
//
// Usage:
//
//	datagen -preset delicious -scale 1.0 -seed 42 -out delicious.frnd
//	datagen -friends friends.tsv -tags tags.tsv -out real.frnd -vocab names/
//
// Presets: delicious, flickr, twitter (see internal/gen for their
// shapes). Scale multiplies the user/item/tag universes. In import
// mode, -vocab additionally persists the name dictionaries so query
// tools can translate ids back to names.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	preset := flag.String("preset", "delicious", "corpus preset: delicious, flickr, twitter")
	scale := flag.Float64("scale", 1.0, "universe scale multiplier")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("out", "", "output path (required)")
	friends := flag.String("friends", "", "import mode: friendships TSV (userA<TAB>userB<TAB>weight)")
	tags := flag.String("tags", "", "import mode: taggings TSV (user<TAB>item<TAB>tag[<TAB>count])")
	vocabDir := flag.String("vocab", "", "import mode: directory to persist name dictionaries")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *friends != "" || *tags != "" {
		c, err := load.ReadFiles(*friends, *tags)
		if err != nil {
			log.Fatal(err)
		}
		if err := index.WriteFile(*out, c.Graph, c.Store); err != nil {
			log.Fatal(err)
		}
		if *vocabDir != "" {
			if err := c.Names.WriteDir(*vocabDir); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("imported %s: %d users, %d edges, %d items, %d tags, %d triples\n",
			*out, c.Graph.NumUsers(), c.Graph.NumEdges(),
			c.Store.NumItems(), c.Store.NumTags(), c.Store.NumTriples())
		return
	}
	var params gen.CorpusParams
	switch *preset {
	case "delicious":
		params = gen.DeliciousParams()
	case "flickr":
		params = gen.FlickrParams()
	case "twitter":
		params = gen.TwitterParams()
	default:
		log.Fatalf("unknown preset %q (want delicious, flickr or twitter)", *preset)
	}
	params = params.Scale(*scale)

	ds, err := gen.Generate(params, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := index.WriteFile(*out, ds.Graph, ds.Store); err != nil {
		log.Fatal(err)
	}
	gs := ds.Graph.ComputeStats(64)
	ss := ds.Store.ComputeStats()
	fmt.Printf("wrote %s: %d users, %d edges, %d items, %d tags, %d triples\n",
		*out, gs.NumUsers, gs.NumEdges, ss.Items, ss.Tags, ss.Triples)
}
