// Command benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output (ideally -count=5 or more), reduces each
// benchmark's ns/op samples to their median, and compares the tracked
// benchmarks against a checked-in JSON baseline, failing when any
// regresses by more than the threshold.
//
//	go test -run xxx -bench Serving -benchmem -count 5 . | tee bench.txt
//	benchgate -baseline BENCH_baseline.json -input bench.txt
//	benchgate -baseline BENCH_baseline.json -input bench.txt -update   # refresh the baseline
//
// The gate compares medians rather than single runs so one scheduler
// hiccup cannot fail CI, and only fails on the benchmarks named in the
// baseline (new benchmarks are reported but do not gate until they are
// baselined with -update).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the checked-in BENCH_baseline.json format.
type Baseline struct {
	// Note documents provenance (host, date, command) for humans.
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (without the -GOMAXPROCS suffix)
	// to its accepted median ns/op. These comparisons are absolute and
	// therefore hardware-sensitive: refresh the baseline from the
	// runner class that gates on it.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Ratios are hardware-independent invariants: each requires
	// median(Num)/median(Den) <= Max. Use them to pin relationships
	// (e.g. "the edge-scoped churn path stays faster than the
	// global-generation one") that hold on any machine. Ratios are
	// never touched by -update.
	Ratios []RatioGate `json:"ratios,omitempty"`
	// Allocs maps benchmark name to its accepted median allocs/op
	// (requires -benchmem in the bench command). Unlike ns/op these are
	// gated strictly — ANY growth fails, with no percentage budget —
	// because allocation counts are deterministic properties of the
	// code, not of the hardware. Which benchmarks to gate is
	// hand-curated (like Ratios); -update refreshes the values of the
	// existing keys only.
	Allocs map[string]float64 `json:"allocs,omitempty"`
}

// RatioGate is one cross-benchmark invariant.
type RatioGate struct {
	Name string  `json:"name"`
	Num  string  `json:"num"`
	Den  string  `json:"den"`
	Max  float64 `json:"max"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkServingCachedSearch-8   500   2100000 ns/op   12 B/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocField matches the allocs/op field -benchmem appends.
var allocField = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// parseBench collects ns/op and (when -benchmem was on) allocs/op
// samples per benchmark name from go test -bench output.
func parseBench(r io.Reader) (map[string][]float64, map[string][]float64, error) {
	samples := make(map[string][]float64)
	allocs := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], v)
		if a := allocField.FindStringSubmatch(sc.Text()); a != nil {
			n, err := strconv.ParseFloat(a[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchgate: bad allocs/op in %q: %v", sc.Text(), err)
			}
			allocs[m[1]] = append(allocs[m[1]], n)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return samples, allocs, nil
}

// median reduces samples; it panics on an empty slice (callers filter).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// verdict is one benchmark's gate outcome.
type verdict struct {
	name      string
	base, got float64 // ns/op
	deltaPct  float64
	fail      bool
	newBench  bool
}

// gate compares medians against the baseline. Benchmarks present in
// the baseline but missing from the input fail the gate (a silently
// deleted benchmark must not pass); input benchmarks without a
// baseline are informational.
func gate(base Baseline, samples map[string][]float64, thresholdPct float64) ([]verdict, bool) {
	var out []verdict
	failed := false
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		xs, ok := samples[name]
		if !ok || len(xs) == 0 {
			out = append(out, verdict{name: name, base: want, got: -1, fail: true})
			failed = true
			continue
		}
		got := median(xs)
		delta := 100 * (got - want) / want
		v := verdict{name: name, base: want, got: got, deltaPct: delta, fail: delta > thresholdPct}
		failed = failed || v.fail
		out = append(out, v)
	}
	var extra []string
	for name := range samples {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, verdict{name: name, base: -1, got: median(samples[name]), newBench: true})
	}
	return out, failed
}

// gateRatios evaluates the hardware-independent ratio invariants.
func gateRatios(base Baseline, samples map[string][]float64) ([]string, bool) {
	var lines []string
	failed := false
	for _, r := range base.Ratios {
		num, okN := samples[r.Num]
		den, okD := samples[r.Den]
		if !okN || !okD || len(num) == 0 || len(den) == 0 {
			lines = append(lines, fmt.Sprintf("FAIL  ratio %s: missing %s or %s in input", r.Name, r.Num, r.Den))
			failed = true
			continue
		}
		got := median(num) / median(den)
		status := "ok   "
		if got > r.Max {
			status = "FAIL "
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%s ratio %-38s %.3f (limit %.3f)", status, r.Name, got, r.Max))
	}
	return lines, failed
}

// gateAllocs evaluates the strict allocation gates: a baselined
// benchmark's median allocs/op may shrink but never grow, and a
// baselined benchmark whose input lacks allocation data (e.g. the
// bench ran without -benchmem) fails rather than silently passing.
func gateAllocs(base Baseline, allocs map[string][]float64) ([]string, bool) {
	var lines []string
	failed := false
	names := make([]string, 0, len(base.Allocs))
	for name := range base.Allocs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Allocs[name]
		xs, ok := allocs[name]
		if !ok || len(xs) == 0 {
			lines = append(lines, fmt.Sprintf("FAIL  allocs %-38s no allocs/op in input (run with -benchmem)", name))
			failed = true
			continue
		}
		got := median(xs)
		status := "ok   "
		if got > want {
			status = "FAIL "
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%s allocs %-38s %10.0f -> %10.0f allocs/op (any growth fails)", status, name, want, got))
	}
	return lines, failed
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSON")
	inputPath := flag.String("input", "-", "go test -bench output (- = stdin)")
	threshold := flag.Float64("threshold", 15, "max tolerated regression, percent")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of gating")
	note := flag.String("note", "", "provenance note stored with -update")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	samples, allocs, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("benchgate: no benchmark results in input"))
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: make(map[string]float64, len(samples))}
		// Preserve the hand-written ratio invariants across refreshes,
		// and refresh (but never add or drop) the curated alloc gates.
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			var old Baseline
			if err := json.Unmarshal(raw, &old); err == nil {
				b.Ratios = old.Ratios
				if len(old.Allocs) > 0 {
					b.Allocs = make(map[string]float64, len(old.Allocs))
					for name, want := range old.Allocs {
						if xs, ok := allocs[name]; ok && len(xs) > 0 {
							b.Allocs[name] = median(xs)
						} else {
							b.Allocs[name] = want
						}
					}
				}
			}
		}
		for name, xs := range samples {
			b.Benchmarks[name] = median(xs)
		}
		raw, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baselined %d benchmarks into %s\n", len(b.Benchmarks), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("benchgate: parsing %s: %w", *baselinePath, err))
	}
	verdicts, failed := gate(base, samples, *threshold)
	ratioLines, ratioFailed := gateRatios(base, samples)
	allocLines, allocFailed := gateAllocs(base, allocs)
	failed = failed || ratioFailed || allocFailed
	for _, line := range ratioLines {
		fmt.Println(line)
	}
	for _, line := range allocLines {
		fmt.Println(line)
	}
	for _, v := range verdicts {
		switch {
		case v.newBench:
			fmt.Printf("NEW   %-45s %12.0f ns/op (not gated; add with -update)\n", v.name, v.got)
		case v.got < 0:
			fmt.Printf("GONE  %-45s baseline %12.0f ns/op but absent from input\n", v.name, v.base)
		default:
			status := "ok   "
			if v.fail {
				status = "FAIL "
			}
			fmt.Printf("%s %-45s %12.0f -> %12.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
				status, v.name, v.base, v.got, v.deltaPct, *threshold)
		}
	}
	if failed {
		fmt.Println("benchgate: regression gate FAILED")
		os.Exit(1)
	}
	fmt.Println("benchgate: regression gate passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
