package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServingCachedSearch-8   	     500	   2100000 ns/op	    1000 B/op	      10 allocs/op
BenchmarkServingCachedSearch-8   	     500	   2000000 ns/op	    1000 B/op	      10 allocs/op
BenchmarkServingCachedSearch-8   	     480	   2300000 ns/op	    1000 B/op	      10 allocs/op
BenchmarkServingBatchSearch-8    	    1000	   1200000 ns/op
BenchmarkServingMutationChurnEdgeScoped 	      20	    184758 ns/op	         0.8929 hit-rate
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	samples, allocs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkServingCachedSearch"]); got != 3 {
		t.Fatalf("cached samples = %d, want 3", got)
	}
	if got := median(samples["BenchmarkServingCachedSearch"]); got != 2100000 {
		t.Fatalf("cached median = %g, want 2100000", got)
	}
	if got := samples["BenchmarkServingMutationChurnEdgeScoped"]; len(got) != 1 || got[0] != 184758 {
		t.Fatalf("churn samples = %v", got)
	}
	if _, ok := samples["PASS"]; ok {
		t.Fatal("non-benchmark lines parsed")
	}
	if got := allocs["BenchmarkServingCachedSearch"]; len(got) != 3 || median(got) != 10 {
		t.Fatalf("cached alloc samples = %v, want three 10s", got)
	}
	// No -benchmem fields on the batch line: no alloc samples.
	if got, ok := allocs["BenchmarkServingBatchSearch"]; ok {
		t.Fatalf("batch alloc samples = %v, want none", got)
	}
}

func TestGate(t *testing.T) {
	samples, _, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline{Benchmarks: map[string]float64{
		"BenchmarkServingCachedSearch": 2000000, // +5% observed: within a 15% budget
		"BenchmarkServingBatchSearch":  1150000, // +4.3%
	}}
	if verdicts, failed := gate(base, samples, 15); failed {
		t.Fatalf("within-threshold run failed the gate: %+v", verdicts)
	}

	base.Benchmarks["BenchmarkServingBatchSearch"] = 1000000 // +20% observed
	verdicts, failed := gate(base, samples, 15)
	if !failed {
		t.Fatal("20% regression passed a 15% gate")
	}
	var failedNames []string
	for _, v := range verdicts {
		if v.fail {
			failedNames = append(failedNames, v.name)
		}
	}
	if len(failedNames) != 1 || failedNames[0] != "BenchmarkServingBatchSearch" {
		t.Fatalf("failed benchmarks = %v", failedNames)
	}

	// A baselined benchmark missing from the input must fail the gate.
	base = Baseline{Benchmarks: map[string]float64{"BenchmarkDeleted": 100}}
	if _, failed := gate(base, samples, 15); !failed {
		t.Fatal("missing baselined benchmark passed the gate")
	}

	// Un-baselined benchmarks are informational only.
	base = Baseline{Benchmarks: map[string]float64{"BenchmarkServingBatchSearch": 1200000}}
	verdicts, failed = gate(base, samples, 15)
	if failed {
		t.Fatalf("informational extras failed the gate: %+v", verdicts)
	}
	news := 0
	for _, v := range verdicts {
		if v.newBench {
			news++
		}
	}
	if news != 2 {
		t.Fatalf("new benchmarks reported = %d, want 2", news)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %g", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %g", got)
	}
}

func TestGateAllocs(t *testing.T) {
	_, allocs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly at baseline: passes.
	base := Baseline{Allocs: map[string]float64{"BenchmarkServingCachedSearch": 10}}
	if lines, failed := gateAllocs(base, allocs); failed {
		t.Fatalf("at-baseline allocs failed the gate: %v", lines)
	}
	// Shrinking is fine.
	base.Allocs["BenchmarkServingCachedSearch"] = 12
	if lines, failed := gateAllocs(base, allocs); failed {
		t.Fatalf("shrunk allocs failed the gate: %v", lines)
	}
	// Any growth fails — no percentage budget.
	base.Allocs["BenchmarkServingCachedSearch"] = 9
	if _, failed := gateAllocs(base, allocs); !failed {
		t.Fatal("grown allocs passed the strict gate")
	}
	// A gated benchmark with no allocs/op data in the input fails
	// (the bench must run with -benchmem).
	base = Baseline{Allocs: map[string]float64{"BenchmarkServingBatchSearch": 0}}
	if _, failed := gateAllocs(base, allocs); !failed {
		t.Fatal("missing allocs/op data passed the gate")
	}
}

func TestGateRatios(t *testing.T) {
	samples := map[string][]float64{
		"BenchmarkA": {200, 210, 190},
		"BenchmarkB": {400, 390, 410},
	}
	base := Baseline{Ratios: []RatioGate{{Name: "a-vs-b", Num: "BenchmarkA", Den: "BenchmarkB", Max: 0.6}}}
	if lines, failed := gateRatios(base, samples); failed {
		t.Fatalf("ratio 0.5 failed a 0.6 limit: %v", lines)
	}
	base.Ratios[0].Max = 0.4
	if _, failed := gateRatios(base, samples); !failed {
		t.Fatal("ratio 0.5 passed a 0.4 limit")
	}
	base.Ratios[0].Num = "BenchmarkMissing"
	if _, failed := gateRatios(base, samples); !failed {
		t.Fatal("missing ratio operand passed")
	}
}
