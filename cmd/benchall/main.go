// Command benchall regenerates the evaluation tables and figures.
//
// Usage:
//
//	benchall                      # every experiment, full scale
//	benchall -exp fig4            # one experiment
//	benchall -scale 0.25 -queries 10   # quick pass
//	benchall -list                # show the registry
//
// Output goes to stdout; EXPERIMENTS.md archives a full run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchall: ")

	expID := flag.String("exp", "", "run a single experiment by id (default: all)")
	scale := flag.Float64("scale", 1.0, "corpus scale multiplier")
	seed := flag.Int64("seed", 42, "generation seed")
	queries := flag.Int("queries", 40, "queries per measurement point")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Queries: *queries}

	experiments := bench.All()
	if *expID != "" {
		e, ok := bench.ByID(*expID)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *expID)
		}
		experiments = []bench.Experiment{e}
	}
	for _, e := range experiments {
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Printf("[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
