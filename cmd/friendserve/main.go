// Command friendserve runs the social tagging search service over
// HTTP/JSON — as a single process, as one replica of a fleet, or as a
// fleet front-end.
//
// Usage:
//
//	friendserve [-addr :8080] [-dir /var/lib/friendsearch] [-demo]
//	            [-cache-size 256] [-cache-shards 4] [-cache-ttl 0]
//	            [-cache-min-horizon 0] [-cache-min-misses 0]
//	            [-drain 500ms]
//	            [-admit] [-admit-window 8] [-admit-max-window 256]
//	            [-admit-queue 128] [-admit-queue-deadline 500ms]
//	            [-log-format text] [-pprof] [-trace-sample 16]
//	            [-trace-slow 250ms] [-trace-recorder 256]
//	friendserve -replica [-addr :8081] [-join http://fe:8080]
//	            [-advertise http://host:8081] ...
//	friendserve -replicas http://a:8081,http://b:8082 [-addr :8080]
//	            [-hedge 0] [-health-interval 1s] [-fail-after 3]
//	            [-bcast-window 25ms] [-bcast-max-edges 512]
//	            [-replog-dir /var/lib/friendsearch/replog]
//	            [-catchup-timeout 30s] [-mutation-timeout 10s]
//	friendserve -replicas ... -replog-dir DIR -frontend-id fe1 \
//	            -peers fe1=http://fe1:8080,fe2=http://fe2:8080,fe3=http://fe3:8080
//
// With -dir the service is crash-safe: every mutation is written ahead
// to a log under the directory and the state survives restarts. Without
// it the service is in-memory. -demo preloads a small example corpus so
// the API can be explored immediately:
//
//	curl -s 'localhost:8080/v1/search?seeker=alice&tags=pizza&k=3'
//	curl -s -d '{"queries":[{"seeker":"alice","tags":["pizza"],"k":3}]}' \
//	     'localhost:8080/v1/search/batch'
//	curl -s -d '{"seeker":"alice","tags":["pizza"],"k":3,"mode":"auto","explain":true}' \
//	     'localhost:8080/v2/search'
//
// Fleet topology (see docs/fleet.md): N -replica processes each hold
// the full dataset and serve the whole API plus /v2/invalidate and
// /healthz//readyz; one -replicas front-end owns the public address,
// routes each seeker's queries to the replica owning it on a
// consistent-hash ring (failing over in ring order when health checks
// eject a replica), forwards mutations to every replica in one order,
// and batches dirty-edge invalidation broadcasts so replica seeker
// caches stay edge-scoped-consistent. A -replica process defers
// compaction to the broadcast heartbeat; run it standalone only for
// debugging.
//
// With -replog-dir the front-end keeps a WAL-backed replication log:
// every mutation is LSN-stamped and durably logged before fan-out, and
// a replica ejected by health checking is readmitted only after it has
// streamed and applied every record it missed (catch-up gating,
// bounded by -catchup-timeout), so a rejoining replica never serves
// answers derived from a stale graph. Without it, readmission is on
// probe successes alone and a rejoined replica's graph silently misses
// the mutations written while it was out.
//
// With -join a -replica process asks a running front-end to adopt it
// into the fleet under traffic (docs/fleet.md "Elastic resize"): once
// this replica is serving, it POSTs its own -advertise URL (default:
// http://127.0.0.1 plus the -addr port) to the front-end's
// /v2/fleet/resize, which bootstraps it from a peer snapshot plus the
// replication log suffix, pre-warms its cache slice, and splices it
// into the routing ring. Requires the front-end to run with
// -replog-dir. Retirement is driven from the front-end side:
//
//	curl -d '{"retire":[2]}' http://fe:8080/v2/fleet/resize
//
// With -frontend-id and -peers the front-end itself is highly
// available (docs/fleet.md, docs/adr/004): 2–3 front-ends replicate
// the replication log with leader election and quorum-acknowledged
// appends. -peers lists every quorum member as id=url pairs (this
// node's -frontend-id must appear among them; the URL set is fixed
// for the process lifetime); -replog-dir holds this node's copy of
// the consensus log, and an existing single-front-end replication
// log in that directory is adopted in place as the committed prefix.
// The elected leader accepts writes and fans them out only after a
// majority acknowledges the append; followers serve reads from the
// same replica ring and answer writes with a 307 redirect naming the
// leader. All three flags ride on -replicas mode.
//
// All modes drain gracefully on SIGTERM/SIGINT: /readyz flips to 503,
// the process keeps serving for -drain so load balancers notice, then
// in-flight requests get 10s to finish.
//
// The -cache-* flags tune the sharded seeker-horizon cache: total entry
// budget, shard count, entry TTL, and the admission thresholds (minimum
// horizon size, minimum miss streak). -cache-size -1 disables caching.
//
// -admit enables adaptive overload control (docs/overload.md): an AIMD
// concurrency window with a deadline-budgeted FIFO queue in front of
// every query and unstamped mutation. Requests past the budget are
// shed with 429 + Retry-After; under queue pressure the server first
// sheds Explain work, then degrades mode:auto queries to the certified
// approximate path. LSN-stamped replication applies are never shed.
// Works in every mode — on a replica it protects that replica's
// engine; on the front-end it bounds fleet-wide fan-out.
//
// Observability (docs/observability.md): every process carries an
// always-on tracing plane. Requests get W3C-traceparent trace/span
// ids (minted at the front-end, propagated to replicas and quorum
// peers), 1-in-N head sampling plus tail capture of slow, shed,
// degraded and failed requests into an in-process flight recorder at
// GET /debug/traces, a slow-query log at GET /debug/slowlog, and
// Prometheus text-format metrics at GET /metrics. -trace-sample sets
// the head-sampling rate (1 = trace everything, negative disables),
// -trace-slow the slow/tail threshold, -trace-recorder the ring
// capacity. -log-format json switches the structured request log
// (one line per sampled or tail-captured request, carrying trace id,
// node id and quorum role) from logfmt-style text to JSON. -pprof
// mounts net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/quorum"
	"repro/internal/server"
	"repro/internal/social"
)

// replicaCompactEvery effectively disables count-triggered
// auto-compaction in -replica mode: the front-end's invalidation
// broadcast is the fleet's compaction heartbeat, so replicas fold
// pending writes when told to and all land on the same snapshots.
const replicaCompactEvery = 1 << 30

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "durable state directory (empty: in-memory)")
	demo := flag.Bool("demo", false, "preload a small demo corpus")
	cacheSize := flag.Int("cache-size", 0, "total seeker-cache entries across shards (0 = default, negative disables)")
	cacheShards := flag.Int("cache-shards", 0, "seeker-cache shard count (0 = default)")
	cacheTTL := flag.Duration("cache-ttl", 0, "seeker-cache entry TTL (0 = never expire)")
	cacheMinHorizon := flag.Int("cache-min-horizon", 0, "do not cache horizons smaller than this many users")
	cacheMinMisses := flag.Int("cache-min-misses", 0, "cache a seeker only after this many misses")
	drain := flag.Duration("drain", 500*time.Millisecond, "keep serving this long after /readyz flips to 503 on shutdown")
	replica := flag.Bool("replica", false, "serve as a fleet replica (compaction deferred to the invalidation broadcast)")
	joinURL := flag.String("join", "", "replica: ask this front-end to adopt this process into the fleet once serving (elastic join; front-end needs -replog-dir)")
	advertise := flag.String("advertise", "", "replica: base URL the front-end reaches this replica at (default: http://127.0.0.1 + the -addr port)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs: serve as the fleet front-end")
	hedge := flag.Duration("hedge", 0, "front-end: duplicate a single query not answered within this delay (0 disables)")
	healthInterval := flag.Duration("health-interval", 0, "front-end: replica /healthz probe period (0 = default)")
	failAfter := flag.Int("fail-after", 0, "front-end: consecutive failures before ejecting a replica (0 = default)")
	bcastWindow := flag.Duration("bcast-window", 0, "front-end: invalidation broadcast coalescing window (0 = default)")
	bcastMaxEdges := flag.Int("bcast-max-edges", 0, "front-end: flush a broadcast batch early at this many dirty edges (0 = default)")
	replogDir := flag.String("replog-dir", "", "front-end: replication log directory; enables catch-up-gated replica readmission (empty = disabled)")
	frontendID := flag.String("frontend-id", "", "HA front-end: this node's stable quorum id (must be a key of -peers)")
	peers := flag.String("peers", "", "HA front-end: comma-separated id=url pairs for every quorum member including this node; enables the quorum-replicated replication log (requires -replicas, -replog-dir and -frontend-id)")
	catchupTimeout := flag.Duration("catchup-timeout", 0, "front-end: bound on one replica's replication log catch-up (0 = default 30s)")
	mutationTimeout := flag.Duration("mutation-timeout", 0, "front-end: bound on one replica's acknowledgement of one forwarded mutation (0 = default 10s)")
	admit := flag.Bool("admit", false, "enable adaptive admission control (AIMD window + brownout; see docs/overload.md)")
	admitWindow := flag.Int("admit-window", 0, "admission: initial concurrency window (0 = default)")
	admitMaxWindow := flag.Int("admit-max-window", 0, "admission: concurrency window ceiling (0 = default)")
	admitQueue := flag.Int("admit-queue", 0, "admission: bounded wait-queue length (0 = default)")
	admitQueueDeadline := flag.Duration("admit-queue-deadline", 0, "admission: max time a request may wait queued (0 = default)")
	logFormat := flag.String("log-format", "text", "structured request-log format: text or json")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceSample := flag.Int("trace-sample", 0, "trace head-sampling rate: record 1 in N requests (1 = all, 0 = default 16, negative disables)")
	traceSlow := flag.Duration("trace-slow", 0, "tail-capture and slow-log any request at least this slow (0 = default 250ms, negative disables)")
	traceRecorder := flag.Int("trace-recorder", 0, "flight-recorder capacity in completed traces (0 = default 256)")
	flag.Parse()

	if *replica && *replicas != "" {
		log.Fatalf("friendserve: -replica and -replicas are mutually exclusive")
	}
	if *joinURL != "" && !*replica {
		log.Fatalf("friendserve: -join requires -replica")
	}
	if (*peers != "") != (*frontendID != "") {
		log.Fatalf("friendserve: -peers and -frontend-id go together")
	}
	if *peers != "" && (*replicas == "" || *replogDir == "") {
		log.Fatalf("friendserve: -peers requires -replicas and -replog-dir")
	}
	if *logFormat != "text" && *logFormat != "json" {
		log.Fatalf("friendserve: -log-format must be text or json (got %q)", *logFormat)
	}

	// One stable node identity names this process in spans, trace
	// records, log lines and /metrics: the quorum id when the
	// front-end is HA, otherwise the listen address.
	nodeID := *frontendID
	if nodeID == "" {
		nodeID = *addr
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, nodeID)

	var backend server.Backend
	var cleanup func()
	var qnode *quorum.Node
	if *replicas != "" {
		front, node, err := buildFrontend(frontendOpts{
			urls:            *replicas,
			hedge:           *hedge,
			healthInterval:  *healthInterval,
			failAfter:       *failAfter,
			bcastWindow:     *bcastWindow,
			bcastMaxEdges:   *bcastMaxEdges,
			replogDir:       *replogDir,
			catchupTimeout:  *catchupTimeout,
			mutationTimeout: *mutationTimeout,
			frontendID:      *frontendID,
			peers:           *peers,
			logf:            logger.Printf,
		})
		if err != nil {
			log.Fatalf("friendserve: %v", err)
		}
		backend, cleanup, qnode = front, front.Close, node
		switch {
		case qnode != nil:
			log.Printf("HA fleet front-end %s over %s (quorum log: %s, peers: %s)",
				*frontendID, *replicas, *replogDir, *peers)
		case *replogDir != "":
			log.Printf("fleet front-end over %s (replication log: %s)", *replicas, *replogDir)
		default:
			log.Printf("fleet front-end over %s (no replication log: ejected replicas rejoin stale)", *replicas)
		}
	} else {
		svcCfg := social.DefaultServiceConfig()
		svcCfg.SeekerCacheSize = *cacheSize
		svcCfg.CacheShards = *cacheShards
		svcCfg.CachePolicy = qcache.Policy{
			TTL:             *cacheTTL,
			MinHorizonUsers: *cacheMinHorizon,
			MinMisses:       *cacheMinMisses,
		}
		if *replica {
			svcCfg.AutoCompactEvery = replicaCompactEvery
		}
		var err error
		backend, cleanup, err = buildBackend(*dir, svcCfg, *replica)
		if err != nil {
			log.Fatalf("friendserve: %v", err)
		}
	}
	defer cleanup()

	if *demo {
		if err := loadDemo(backend); err != nil {
			log.Fatalf("friendserve: loading demo corpus: %v", err)
		}
		log.Printf("demo corpus loaded (try seeker=alice tags=pizza)")
	}

	srv, err := server.New(backend)
	if err != nil {
		log.Fatalf("friendserve: %v", err)
	}
	srv.SetDrainDelay(*drain)

	// The observability plane: tracer + flight recorder, build info on
	// /healthz and /v1/stats, structured request log, /metrics, and
	// (opt-in) pprof. The quorum role callback keeps every log line
	// honest about who was leader when it was written.
	tracer := obs.NewTracer(obs.Config{
		Node:             nodeID,
		SampleEvery:      *traceSample,
		SlowThreshold:    *traceSlow,
		RecorderCapacity: *traceRecorder,
	})
	srv.SetTracer(tracer)
	srv.SetBuild(obs.NewBuild(nodeID))
	srv.SetAccessLogger(logger)
	srv.SetLogf(logger.Printf)
	if *pprofOn {
		srv.EnablePprof()
	}
	switch {
	case qnode != nil:
		logger.SetRole(func() string { return qnode.Stats().Role })
	case *replicas != "":
		logger.SetRole(func() string { return "frontend" })
	case *replica:
		logger.SetRole(func() string { return "replica" })
	}

	if qnode != nil {
		// The consensus transport shares the public listener; start the
		// node's timers only once the handler is about to accept RPCs.
		srv.MountQuorum(qnode.Handler())
		qnode.Start()
	}
	if *admit {
		ctrl := admission.New(admission.Config{
			InitialWindow: *admitWindow,
			MaxWindow:     *admitMaxWindow,
			QueueLimit:    *admitQueue,
			QueueDeadline: *admitQueueDeadline,
		})
		srv.SetAdmission(ctrl)
		log.Printf("admission control on (window=%d max=%d queue=%d deadline=%v; 0 = package default)",
			*admitWindow, *admitMaxWindow, *admitQueue, *admitQueueDeadline)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch {
	case *replicas != "":
		log.Printf("listening on %s (fleet front-end)", *addr)
	case *replica:
		log.Printf("listening on %s (fleet replica, durable=%v)", *addr, *dir != "")
	default:
		log.Printf("listening on %s (durable=%v)", *addr, *dir != "")
	}
	if *joinURL != "" {
		self := *advertise
		if self == "" {
			self = defaultAdvertise(*addr)
		}
		go selfJoin(ctx, *joinURL, self)
	}
	if err := srv.ListenAndServe(ctx, *addr, 10*time.Second); err != nil {
		log.Fatalf("friendserve: %v", err)
	}
	log.Printf("shut down cleanly")
}

// defaultAdvertise derives the URL a front-end can reach this process
// at from the listen address: a bare ":8081" advertises loopback.
func defaultAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// selfJoin asks the front-end to adopt this replica into the fleet,
// retrying until the local server answers /healthz and the front-end
// accepts the resize (a joiner often starts before, or alongside, the
// front-end). Joins are idempotent by URL on the front-end side, so a
// retry after a half-completed attempt resumes rather than duplicating.
func selfJoin(ctx context.Context, frontURL, selfURL string) {
	const attempts = 60
	body := fmt.Sprintf(`{"join":[%q]}`, selfURL)
	for i := 0; i < attempts; i++ {
		if ctx.Err() != nil {
			return
		}
		err := func() error {
			rctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodPost,
				strings.TrimRight(frontURL, "/")+"/v2/fleet/resize", strings.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("front-end answered %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
			}
			log.Printf("joined fleet via %s: %s", frontURL, strings.TrimSpace(string(payload)))
			return nil
		}()
		if err == nil {
			return
		}
		log.Printf("fleet join attempt %d/%d via %s: %v", i+1, attempts, frontURL, err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
	log.Printf("fleet join via %s gave up after %d attempts", frontURL, attempts)
}

type frontendOpts struct {
	urls            string
	hedge           time.Duration
	healthInterval  time.Duration
	failAfter       int
	bcastWindow     time.Duration
	bcastMaxEdges   int
	replogDir       string
	catchupTimeout  time.Duration
	mutationTimeout time.Duration
	frontendID      string
	peers           string
	logf            func(format string, args ...interface{})
}

// parsePeers reads the -peers "id=url,id=url" form into the quorum
// member map.
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("malformed -peers entry %q (want id=url)", pair)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate -peers id %q", id)
		}
		out[id] = url
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers named no members")
	}
	return out, nil
}

func buildFrontend(o frontendOpts) (*fleet.Frontend, *quorum.Node, error) {
	var clients []*fleet.Client
	for _, u := range strings.Split(o.urls, ",") {
		if u = strings.TrimSpace(u); u == "" {
			continue
		}
		c, err := fleet.NewClient(u, fleet.ClientConfig{HedgeDelay: o.hedge})
		if err != nil {
			return nil, nil, err
		}
		clients = append(clients, c)
	}
	pool, err := fleet.NewPool(clients, fleet.PoolConfig{
		HealthInterval: o.healthInterval,
		FailAfter:      o.failAfter,
	})
	if err != nil {
		return nil, nil, err
	}
	bcast := fleet.NewBroadcaster(clients, fleet.BroadcasterConfig{
		Window:        o.bcastWindow,
		MaxBatchEdges: o.bcastMaxEdges,
	})
	front, err := fleet.NewFrontend(pool, bcast)
	if err != nil {
		pool.Close()
		bcast.Close()
		return nil, nil, err
	}
	if o.mutationTimeout > 0 {
		front.MutationTimeout = o.mutationTimeout
	}
	// Elastically joined replicas get the same client config as the
	// configured fleet.
	front.NewReplicaClient = func(u string) (*fleet.Client, error) {
		return fleet.NewClient(u, fleet.ClientConfig{HedgeDelay: o.hedge})
	}
	if o.catchupTimeout > 0 {
		front.CatchupTimeout = o.catchupTimeout
	}
	if o.peers != "" {
		// HA mode: the replog directory holds this node's copy of the
		// quorum-replicated log (an existing single-front-end replog is
		// adopted as the committed prefix).
		peerMap, err := parsePeers(o.peers)
		if err != nil {
			front.Close()
			return nil, nil, err
		}
		logf := o.logf
		if logf == nil {
			logf = log.Printf
		}
		node, err := quorum.Open(quorum.Config{
			ID:    o.frontendID,
			Peers: peerMap,
			Dir:   o.replogDir,
			Logf:  logf,
		})
		if err != nil {
			front.Close()
			return nil, nil, err
		}
		if err := front.UseQuorum(node); err != nil {
			node.Close()
			front.Close()
			return nil, nil, err
		}
		return front, node, nil
	}
	if o.replogDir != "" {
		rl, err := fleet.OpenRepLog(o.replogDir)
		if err != nil {
			front.Close()
			return nil, nil, err
		}
		if err := front.UseRepLog(rl); err != nil {
			rl.Close()
			front.Close()
			return nil, nil, err
		}
	}
	return front, nil, nil
}

func buildBackend(dir string, cfg social.ServiceConfig, replica bool) (server.Backend, func(), error) {
	if dir == "" {
		if !replica {
			cfg.AutoCompactEvery = 0
		}
		svc, err := social.NewService(cfg)
		return svc, func() {}, err
	}
	dcfg := durable.DefaultConfig()
	dcfg.Service = cfg
	svc, err := durable.Open(dir, dcfg)
	if err != nil {
		return nil, nil, err
	}
	return svc, func() {
		if err := svc.Close(); err != nil {
			log.Printf("friendserve: closing durable service: %v", err)
		}
	}, nil
}

func loadDemo(b server.Backend) error {
	friends := []struct {
		a, b string
		w    float64
	}{
		{"alice", "bob", 0.9}, {"bob", "carol", 0.8}, {"alice", "dave", 0.5},
		{"carol", "erin", 0.7}, {"dave", "erin", 0.6},
	}
	tags := []struct{ u, i, t string }{
		{"bob", "luigis", "pizza"}, {"bob", "luigis", "italian"},
		{"carol", "marios", "pizza"}, {"dave", "marios", "pizza"},
		{"erin", "sushiko", "sushi"}, {"alice", "sushiko", "sushi"},
		{"erin", "luigis", "pizza"},
	}
	for _, f := range friends {
		if err := b.Befriend(f.a, f.b, f.w); err != nil {
			return fmt.Errorf("befriend %s-%s: %w", f.a, f.b, err)
		}
	}
	for _, tg := range tags {
		if err := b.Tag(tg.u, tg.i, tg.t); err != nil {
			return fmt.Errorf("tag %s/%s/%s: %w", tg.u, tg.i, tg.t, err)
		}
	}
	return nil
}
