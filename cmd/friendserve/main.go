// Command friendserve runs the social tagging search service over
// HTTP/JSON.
//
// Usage:
//
//	friendserve [-addr :8080] [-dir /var/lib/friendsearch] [-demo]
//	            [-cache-size 256] [-cache-shards 4] [-cache-ttl 0]
//	            [-cache-min-horizon 0] [-cache-min-misses 0]
//
// With -dir the service is crash-safe: every mutation is written ahead
// to a log under the directory and the state survives restarts. Without
// it the service is in-memory. -demo preloads a small example corpus so
// the API can be explored immediately:
//
//	curl -s 'localhost:8080/v1/search?seeker=alice&tags=pizza&k=3'
//	curl -s -d '{"queries":[{"seeker":"alice","tags":["pizza"],"k":3}]}' \
//	     'localhost:8080/v1/search/batch'
//	curl -s -d '{"seeker":"alice","tags":["pizza"],"k":3,"mode":"auto","explain":true}' \
//	     'localhost:8080/v2/search'
//
// The v2 endpoints expose the full request surface — per-query beta,
// execution mode, score filtering, offset paging, cache bypass/age
// bounds, explainable answers — and honour client disconnects (a
// cancelled request stops executing).
//
// The -cache-* flags tune the sharded seeker-horizon cache: total entry
// budget, shard count, entry TTL, and the admission thresholds (minimum
// horizon size, minimum miss streak). -cache-size -1 disables caching.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/qcache"
	"repro/internal/server"
	"repro/internal/social"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "durable state directory (empty: in-memory)")
	demo := flag.Bool("demo", false, "preload a small demo corpus")
	cacheSize := flag.Int("cache-size", 0, "total seeker-cache entries across shards (0 = default, negative disables)")
	cacheShards := flag.Int("cache-shards", 0, "seeker-cache shard count (0 = default)")
	cacheTTL := flag.Duration("cache-ttl", 0, "seeker-cache entry TTL (0 = never expire)")
	cacheMinHorizon := flag.Int("cache-min-horizon", 0, "do not cache horizons smaller than this many users")
	cacheMinMisses := flag.Int("cache-min-misses", 0, "cache a seeker only after this many misses")
	flag.Parse()

	svcCfg := social.DefaultServiceConfig()
	svcCfg.SeekerCacheSize = *cacheSize
	svcCfg.CacheShards = *cacheShards
	svcCfg.CachePolicy = qcache.Policy{
		TTL:             *cacheTTL,
		MinHorizonUsers: *cacheMinHorizon,
		MinMisses:       *cacheMinMisses,
	}

	backend, cleanup, err := buildBackend(*dir, svcCfg)
	if err != nil {
		log.Fatalf("friendserve: %v", err)
	}
	defer cleanup()

	if *demo {
		if err := loadDemo(backend); err != nil {
			log.Fatalf("friendserve: loading demo corpus: %v", err)
		}
		log.Printf("demo corpus loaded (try seeker=alice tags=pizza)")
	}

	srv, err := server.New(backend)
	if err != nil {
		log.Fatalf("friendserve: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("listening on %s (durable=%v)", *addr, *dir != "")
	if err := srv.ListenAndServe(ctx, *addr, 10*time.Second); err != nil {
		log.Fatalf("friendserve: %v", err)
	}
	log.Printf("shut down cleanly")
}

func buildBackend(dir string, cfg social.ServiceConfig) (server.Backend, func(), error) {
	if dir == "" {
		cfg.AutoCompactEvery = 0
		svc, err := social.NewService(cfg)
		return svc, func() {}, err
	}
	dcfg := durable.DefaultConfig()
	dcfg.Service = cfg
	svc, err := durable.Open(dir, dcfg)
	if err != nil {
		return nil, nil, err
	}
	return svc, func() {
		if err := svc.Close(); err != nil {
			log.Printf("friendserve: closing durable service: %v", err)
		}
	}, nil
}

func loadDemo(b server.Backend) error {
	friends := []struct {
		a, b string
		w    float64
	}{
		{"alice", "bob", 0.9}, {"bob", "carol", 0.8}, {"alice", "dave", 0.5},
		{"carol", "erin", 0.7}, {"dave", "erin", 0.6},
	}
	tags := []struct{ u, i, t string }{
		{"bob", "luigis", "pizza"}, {"bob", "luigis", "italian"},
		{"carol", "marios", "pizza"}, {"dave", "marios", "pizza"},
		{"erin", "sushiko", "sushi"}, {"alice", "sushiko", "sushi"},
		{"erin", "luigis", "pizza"},
	}
	for _, f := range friends {
		if err := b.Befriend(f.a, f.b, f.w); err != nil {
			return fmt.Errorf("befriend %s-%s: %w", f.a, f.b, err)
		}
	}
	for _, tg := range tags {
		if err := b.Tag(tg.u, tg.i, tg.t); err != nil {
			return fmt.Errorf("tag %s/%s/%s: %w", tg.u, tg.i, tg.t, err)
		}
	}
	return nil
}
