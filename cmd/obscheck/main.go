// Command obscheck is the smoke-test probe for the observability
// plane — the assertions scripts/fleet_smoke.sh makes against a live
// fleet, kept in Go so CI needs no promtool or jq:
//
//	obscheck -mode metrics -url http://fe:8080 \
//	    -require friendserve_trace_started,friendserve_build_info
//	obscheck -mode trace -url http://fe:8080 -trace-id <id> \
//	    -require-spans admission.acquire,quorum.commit -remote-node fe1
//	obscheck -mode pprof -url http://fe:8080
//
// metrics fetches /metrics, validates every line against the
// Prometheus text exposition grammar (name{labels} value), and
// requires the named metrics to be present. trace fetches one recorded
// trace from /debug/traces/{id} (or scans the /debug/traces listing
// when -trace-id is empty) and requires the named spans, plus — when
// -remote-node is set — at least one span from a node other than that
// one, proving the trace stitched across processes. pprof probes
// /debug/pprof/ and requires an HTTP 200.
//
// Exit status 0 on success; 1 with a diagnostic on any failed
// assertion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	mode := flag.String("mode", "", "what to check: metrics, trace, or pprof")
	url := flag.String("url", "", "base URL of the server under test")
	require := flag.String("require", "", "metrics mode: comma-separated metric names that must be present")
	traceID := flag.String("trace-id", "", "trace mode: fetch this trace (empty: scan the listing for one that satisfies the span requirements)")
	requireSpans := flag.String("require-spans", "", "trace mode: comma-separated span names the trace must contain")
	remoteNode := flag.String("remote-node", "", "trace mode: require at least one span from a node other than this one (cross-process stitch)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	flag.Parse()
	if *url == "" {
		fatalf("-url is required")
	}
	client := &http.Client{Timeout: *timeout}

	switch *mode {
	case "metrics":
		checkMetrics(client, *url, splitList(*require))
	case "trace":
		checkTrace(client, *url, *traceID, splitList(*requireSpans), *remoteNode)
	case "pprof":
		checkPprof(client, *url)
	default:
		fatalf("-mode must be metrics, trace, or pprof (got %q)", *mode)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func get(client *http.Client, url string) []byte {
	resp, err := client.Get(url)
	if err != nil {
		fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: status %d: %s", url, resp.StatusCode, firstLine(body))
	}
	return body
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// checkMetrics validates the exposition format and the presence of the
// required metric names.
func checkMetrics(client *http.Client, base string, required []string) {
	body := get(client, base+"/metrics")
	present := map[string]bool{}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		fatalf("/metrics returned an empty exposition")
	}
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, ok := parseSample(line)
		if !ok {
			fatalf("/metrics line %d is not a valid sample: %q", i+1, line)
		}
		present[name] = true
	}
	var missing []string
	for _, name := range required {
		if !present[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatalf("/metrics is missing required metrics %v (%d metrics present)", missing, len(present))
	}
	fmt.Printf("obscheck metrics: %d samples, %d distinct metrics, all %d required present\n",
		len(lines), len(present), len(required))
}

// parseSample validates one `name{labels} value` exposition line and
// returns the metric name.
func parseSample(line string) (string, bool) {
	rest := line
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", false
		}
		if !validLabels(rest[i+1 : j]) {
			return "", false
		}
		rest = rest[j+1:]
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		return "", false
	}
	if !validMetricName(name) {
		return "", false
	}
	rest = strings.TrimPrefix(rest, " ")
	if _, err := strconv.ParseFloat(rest, 64); err != nil {
		return "", false
	}
	return name, true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		if !(alpha || i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// validLabels checks `k="v",k="v"` with escaped quotes inside values.
func validLabels(s string) bool {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return false
		}
		i := eq + 2
		for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
			i++
		}
		if i >= len(s) {
			return false
		}
		s = s[i+1:]
		if s == "" {
			return true
		}
		if s[0] != ',' {
			return false
		}
		s = s[1:]
	}
	return true
}

// span mirrors obs.SpanData for decoding (obscheck stays decoupled
// from internal packages on purpose: it tests the wire format).
type span struct {
	Name string `json:"name"`
	Node string `json:"node"`
}

type traceRecord struct {
	ID    string `json:"trace_id"`
	Spans []span `json:"spans"`
}

func checkTrace(client *http.Client, base, id string, requiredSpans []string, remoteNode string) {
	var candidates []traceRecord
	if id != "" {
		var rec traceRecord
		mustJSON(get(client, base+"/debug/traces/"+id), &rec)
		candidates = []traceRecord{rec}
	} else {
		var listing struct {
			Traces []struct {
				ID string `json:"trace_id"`
			} `json:"traces"`
		}
		mustJSON(get(client, base+"/debug/traces"), &listing)
		if len(listing.Traces) == 0 {
			fatalf("/debug/traces listed no recorded traces")
		}
		for _, s := range listing.Traces {
			var rec traceRecord
			mustJSON(get(client, base+"/debug/traces/"+s.ID), &rec)
			candidates = append(candidates, rec)
		}
	}
	var lastMiss string
	for _, rec := range candidates {
		if why := traceSatisfies(rec, requiredSpans, remoteNode); why == "" {
			fmt.Printf("obscheck trace: %s has %d spans covering %v%s\n",
				rec.ID, len(rec.Spans), requiredSpans, remoteDesc(remoteNode))
			return
		} else {
			lastMiss = why
		}
	}
	fatalf("no recorded trace satisfies the requirements (checked %d; last miss: %s)",
		len(candidates), lastMiss)
}

func remoteDesc(remoteNode string) string {
	if remoteNode == "" {
		return ""
	}
	return " incl. a span from a node other than " + remoteNode
}

// traceSatisfies returns "" when the trace covers every required span
// name and (when remoteNode is set) includes a span from another node;
// otherwise a human-readable reason.
func traceSatisfies(rec traceRecord, requiredSpans []string, remoteNode string) string {
	names := map[string]bool{}
	remote := false
	for _, sp := range rec.Spans {
		names[sp.Name] = true
		if remoteNode != "" && sp.Node != "" && sp.Node != remoteNode {
			remote = true
		}
	}
	for _, want := range requiredSpans {
		if !names[want] {
			return fmt.Sprintf("trace %s lacks span %q", rec.ID, want)
		}
	}
	if remoteNode != "" && !remote {
		return fmt.Sprintf("trace %s has no span from a node other than %q", rec.ID, remoteNode)
	}
	return ""
}

func mustJSON(body []byte, into interface{}) {
	if err := json.Unmarshal(body, into); err != nil {
		fatalf("decoding JSON: %v: %s", err, firstLine(body))
	}
}

func checkPprof(client *http.Client, base string) {
	body := get(client, base+"/debug/pprof/")
	if !strings.Contains(string(body), "profile") {
		fatalf("/debug/pprof/ answered 200 but does not look like the pprof index: %s", firstLine(body))
	}
	fmt.Println("obscheck pprof: index answers")
}
