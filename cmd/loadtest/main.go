// Command loadtest drives an open-loop fixed-rate load against a
// friendserve instance (single process, replica, or fleet front-end)
// and reports throughput-at-SLO as JSON.
//
// Usage:
//
//	loadtest -url http://localhost:8080 [-qps 200] [-duration 10s]
//	         [-slo 100ms] [-timeout 0] [-mix 90,5,5] [-batch 8] [-k 10]
//	         [-seekers 64] [-tags 8] [-seed 1] [-max-outstanding 4096]
//	         [-seed-corpus] [-out report.json]
//	loadtest -url ... -sweep 100,200,400,800      # one report per step
//	loadtest -url ... -calibrate                  # find capacity, print QPS
//
// Assertion flags turn the run into a pass/fail check (exit 1 on
// violation) so CI scripts need no JSON post-processing:
//
//	-max-p99 150ms        fail if p99 of admitted requests exceeds this
//	-min-goodput 70       fail if on-SLO successes per second fall below
//	-min-shed 1           fail if less than this percent of sends shed
//	-expect-p99-over 1s   fail unless p99 EXCEEDS this (for proving an
//	                      admission-off run violates the SLO)
//
// In -calibrate mode the measured capacity (last healthy QPS on a ×2
// ramp) is printed alone on stdout so shell scripts can capture it;
// the full report still goes to -out.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadtest: ")

	url := flag.String("url", "", "target base URL (required)")
	qps := flag.Float64("qps", 200, "offered arrival rate; -calibrate uses it as the ramp start")
	duration := flag.Duration("duration", 10*time.Second, "length of each fixed-rate step")
	slo := flag.Duration("slo", 100*time.Millisecond, "latency bound for goodput")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = 2×SLO)")
	mixFlag := flag.String("mix", "90,5,5", "read,write,batch weights")
	batch := flag.Int("batch", 8, "queries per batch request")
	k := flag.Int("k", 10, "top-k per query")
	seekers := flag.Int("seekers", 64, "synthetic user corpus size")
	tags := flag.Int("tags", 8, "synthetic tag corpus size")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	maxOut := flag.Int("max-outstanding", 4096, "cap on in-flight requests")
	seedCorpus := flag.Bool("seed-corpus", true, "declare the synthetic graph on the target before driving load")
	sweepFlag := flag.String("sweep", "", "comma-separated QPS steps: emit one report per step")
	calibrate := flag.Bool("calibrate", false, "ramp ×2 from -qps until unhealthy; print last healthy QPS")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	maxP99 := flag.Duration("max-p99", 0, "assert p99 <= this (0 = skip)")
	minGoodput := flag.Float64("min-goodput", 0, "assert goodput QPS >= this (0 = skip)")
	minShed := flag.Float64("min-shed", 0, "assert shed percentage >= this (0 = skip)")
	expectP99Over := flag.Duration("expect-p99-over", 0, "assert p99 > this (0 = skip)")
	maxAdmittedP99 := flag.Duration("max-admitted-p99", 0, "assert the target's server-side admitted-latency p99 (from /v1/stats) <= this (0 = skip)")
	minStatShed := flag.Int64("min-stat-shed", 0, "assert the target's admission shed counters (from /v1/stats) total >= this (0 = skip)")
	minStatOK := flag.Int64("min-stat-ok", 0, "assert the target's on-deadline completion counter (from /v1/stats) >= this (0 = skip)")
	flag.Parse()

	if *url == "" {
		log.Fatal("-url is required")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	// The connection pool must cover the in-flight cap, or the harness
	// serializes on dials and measures itself instead of the target.
	idle := *maxOut
	if idle > 2048 {
		idle = 2048
	}
	client, err := fleet.NewClient(*url, fleet.ClientConfig{
		Timeout:      pickClientTimeout(*timeout, *slo),
		MaxIdleConns: idle,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := &clientTarget{c: client}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	corpus := makeCorpus(*seekers, *tags)
	if *seedCorpus {
		if err := corpus.declare(ctx, target); err != nil {
			log.Fatalf("seeding corpus on %s: %v", *url, err)
		}
	}

	base := loadgen.Config{
		QPS:            *qps,
		Duration:       *duration,
		SLO:            *slo,
		Timeout:        *timeout,
		Mix:            mix,
		BatchSize:      *batch,
		Seekers:        corpus.users,
		Tags:           corpus.tags,
		K:              *k,
		MaxOutstanding: *maxOut,
		Seed:           *seed,
	}

	var result interface{}
	var rep loadgen.Report
	switch {
	case *calibrate:
		cap, capRep, err := loadgen.FindCapacity(ctx, target, base, *qps)
		if err != nil {
			log.Fatal(err)
		}
		rep = capRep
		result = struct {
			CapacityQPS float64        `json:"capacity_qps"`
			Report      loadgen.Report `json:"report"`
		}{cap, capRep}
		// Shell-capturable: the number alone on stdout.
		fmt.Println(strconv.FormatFloat(cap, 'f', -1, 64))
	case *sweepFlag != "":
		steps, err := parseSweep(*sweepFlag)
		if err != nil {
			log.Fatal(err)
		}
		reps, err := loadgen.Sweep(ctx, target, base, steps)
		if err != nil {
			log.Fatal(err)
		}
		if len(reps) > 0 {
			rep = reps[len(reps)-1]
		}
		result = reps
	default:
		rep, err = loadgen.Run(ctx, target, base)
		if err != nil {
			log.Fatal(err)
		}
		result = rep
	}

	if err := emit(result, *out, *calibrate); err != nil {
		log.Fatal(err)
	}
	if err := assertReport(rep, *maxP99, *minGoodput, *minShed, *expectP99Over); err != nil {
		log.Fatal(err)
	}
	if err := assertServerStats(ctx, *url, *maxAdmittedP99, *minStatShed, *minStatOK); err != nil {
		log.Fatal(err)
	}
}

// assertServerStats checks the target's own admission accounting: the
// server-side latency of admitted requests (which excludes shed 429s
// and client network time), the shed totals, and the on-deadline
// completion count — the server's view of goodput, immune to harness
// CPU contention when generator and target share a machine.
func assertServerStats(ctx context.Context, url string, maxAdmittedP99 time.Duration, minShed, minOK int64) error {
	if maxAdmittedP99 <= 0 && minShed <= 0 && minOK <= 0 {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("fetching %s/v1/stats: %w", url, err)
	}
	defer resp.Body.Close()
	var env struct {
		Admission *struct {
			ShedQueueFull int64
			ShedBudget    int64
			ShedDeadline  int64
			OKOnDeadline  int64
			Latency       struct {
				P99 time.Duration
			}
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("decoding %s/v1/stats: %w", url, err)
	}
	if env.Admission == nil {
		return fmt.Errorf("%s/v1/stats carries no Admission block: is -admit on?", url)
	}
	if maxAdmittedP99 > 0 && env.Admission.Latency.P99 > maxAdmittedP99 {
		return fmt.Errorf("assertion failed: server admitted p99 %v > max-admitted-p99 %v",
			env.Admission.Latency.P99, maxAdmittedP99)
	}
	if shed := env.Admission.ShedQueueFull + env.Admission.ShedBudget + env.Admission.ShedDeadline; minShed > 0 && shed < minShed {
		return fmt.Errorf("assertion failed: server shed total %d < min-stat-shed %d", shed, minShed)
	}
	if minOK > 0 && env.Admission.OKOnDeadline < minOK {
		return fmt.Errorf("assertion failed: server on-deadline completions %d < min-stat-ok %d",
			env.Admission.OKOnDeadline, minOK)
	}
	return nil
}

// clientTarget adapts fleet.Client (LSN-stamped mutations) to
// loadgen.Target (load-generated mutations are unstamped: lsn 0 takes
// the normal admission-controlled write path).
type clientTarget struct {
	c *fleet.Client
}

func (t *clientTarget) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return t.c.Do(ctx, req)
}

func (t *clientTarget) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	return t.c.DoBatch(ctx, reqs)
}

func (t *clientTarget) Befriend(ctx context.Context, a, b string, weight float64) error {
	_, err := t.c.Befriend(ctx, a, b, weight, 0)
	return err
}

func (t *clientTarget) Tag(ctx context.Context, user, item, tag string) error {
	_, err := t.c.Tag(ctx, user, item, tag, 0)
	return err
}

// corpus is the synthetic social graph the run queries.
type corpus struct {
	users []string
	items []string
	tags  []string
}

func makeCorpus(nUsers, nTags int) corpus {
	if nUsers < 2 {
		nUsers = 2
	}
	if nTags < 1 {
		nTags = 1
	}
	c := corpus{
		users: make([]string, nUsers),
		items: make([]string, nUsers/2+1),
		tags:  make([]string, nTags),
	}
	for i := range c.users {
		c.users[i] = fmt.Sprintf("u%04d", i)
	}
	for i := range c.items {
		c.items[i] = fmt.Sprintf("item%04d", i)
	}
	for i := range c.tags {
		c.tags[i] = fmt.Sprintf("tag%02d", i)
	}
	return c
}

// declare builds a ring-plus-chords friendship graph and spreads item
// tags across users, so every seeker has a horizon and every tag has
// answers. Idempotent: re-declaring an edge just resets its weight.
func (c corpus) declare(ctx context.Context, t *clientTarget) error {
	n := len(c.users)
	for i, u := range c.users {
		if err := t.Befriend(ctx, u, c.users[(i+1)%n], 0.8); err != nil {
			return err
		}
		if err := t.Befriend(ctx, u, c.users[(i+7)%n], 0.4); err != nil {
			return err
		}
	}
	for i, item := range c.items {
		u := c.users[(i*3)%n]
		tag := c.tags[i%len(c.tags)]
		if err := t.Tag(ctx, u, item, tag); err != nil {
			return err
		}
		if i%2 == 0 {
			if err := t.Tag(ctx, c.users[(i*5+1)%n], item, c.tags[(i+1)%len(c.tags)]); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return loadgen.Mix{}, fmt.Errorf("mix %q: want read,write,batch", s)
	}
	var w [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return loadgen.Mix{}, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
		w[i] = v
	}
	return loadgen.Mix{Read: w[0], Write: w[1], Batch: w[2]}, nil
}

func parseSweep(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sweep %q: bad step %q", s, p)
		}
		out = append(out, v)
	}
	return out, nil
}

func pickClientTimeout(timeout, slo time.Duration) time.Duration {
	if timeout > 0 {
		return timeout
	}
	if slo > 0 {
		return 2 * slo
	}
	return 0
}

func emit(result interface{}, path string, calibrating bool) error {
	b, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		// In calibrate mode stdout already carries the bare capacity
		// number; push the JSON to stderr to keep stdout parseable.
		if calibrating {
			_, err = os.Stderr.Write(b)
		} else {
			_, err = os.Stdout.Write(b)
		}
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func assertReport(r loadgen.Report, maxP99 time.Duration, minGoodput, minShed float64, expectP99Over time.Duration) error {
	if maxP99 > 0 && r.P99 > maxP99 {
		return fmt.Errorf("assertion failed: p99 %v > max-p99 %v", r.P99, maxP99)
	}
	if minGoodput > 0 && r.Goodput < minGoodput {
		return fmt.Errorf("assertion failed: goodput %.1f qps < min-goodput %.1f", r.Goodput, minGoodput)
	}
	if minShed > 0 && r.ShedPct < minShed {
		return fmt.Errorf("assertion failed: shed %.1f%% < min-shed %.1f%%", r.ShedPct, minShed)
	}
	if expectP99Over > 0 && r.P99 <= expectP99Over {
		return fmt.Errorf("assertion failed: p99 %v <= expect-p99-over %v (overload did not hurt?)", r.P99, expectP99Over)
	}
	return nil
}
