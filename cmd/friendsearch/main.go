// Command friendsearch answers socially personalized top-k queries over
// a dataset file produced by datagen.
//
// Usage:
//
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -k 10
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -k 10 -algo exact
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -theta 0.001
//
// Algorithms: merge (default, the paper's SocialMerge), exact
// (materialized baseline), global (non-personalized TA).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/proximity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("friendsearch: ")

	data := flag.String("data", "", "dataset file from datagen (required)")
	seeker := flag.Int("seeker", 0, "seeker user id")
	tagsArg := flag.String("tags", "", "comma-separated query tag ids (required)")
	k := flag.Int("k", 10, "number of results")
	algo := flag.String("algo", "merge", "algorithm: merge, exact, global")
	alpha := flag.Float64("alpha", 1.0, "proximity hop damping in (0,1]")
	beta := flag.Float64("beta", 1.0, "social/global blend in [0,1]")
	theta := flag.Float64("theta", 0, "approximation: stop expanding below this proximity")
	maxUsers := flag.Int("max-users", 0, "approximation: expansion budget (0 = unlimited)")
	flag.Parse()

	if *data == "" || *tagsArg == "" {
		flag.Usage()
		os.Exit(2)
	}
	tags, err := cliutil.ParseTags(*tagsArg)
	if err != nil {
		log.Fatal(err)
	}

	g, store, err := index.ReadFile(*data)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Proximity: proximity.Params{Alpha: *alpha, SelfWeight: 1},
		Beta:      *beta,
	}
	engine, err := core.NewEngine(g, store, cfg)
	if err != nil {
		log.Fatal(err)
	}

	q := core.Query{Seeker: int32(*seeker), Tags: tags, K: *k}
	start := time.Now()
	var ans core.Answer
	switch *algo {
	case "merge":
		ans, err = engine.SocialMerge(q, core.Options{Theta: *theta, MaxUsers: *maxUsers})
	case "exact":
		ans, err = engine.ExactSocial(q)
	case "global":
		ans, err = engine.GlobalTopK(q)
	default:
		log.Fatalf("unknown algorithm %q (want merge, exact or global)", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("algorithm=%s seeker=%d tags=%v k=%d exact=%v\n", *algo, *seeker, tags, *k, ans.Exact)
	fmt.Printf("latency=%s settled=%d seq=%d rand=%d\n",
		elapsed, ans.UsersSettled, ans.Access.Sequential, ans.Access.Random)
	fmt.Print(cliutil.FormatResults(ans.Results))
}
