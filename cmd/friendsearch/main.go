// Command friendsearch answers socially personalized top-k queries over
// a dataset file produced by datagen, through the engine's canonical
// request/response API (internal/search served by internal/exec).
//
// Usage:
//
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -k 10
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -mode exact
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -algo SocialTA -explain
//	friendsearch -data delicious.frnd -seeker 17 -tags 3,9 -theta 0.001
//
// Modes: auto (default — the cost-based planner picks the algorithm),
// exact (refined exact scores), approx (early termination). -algo
// forces one engine algorithm (SocialMerge, ContextMerge, SocialTA,
// GlobalTopK) in auto mode. -explain dumps how the query was answered.
// Ctrl-C cancels a running query mid-expansion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/proximity"
	"repro/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("friendsearch: ")

	data := flag.String("data", "", "dataset file from datagen (required)")
	seeker := flag.Int("seeker", 0, "seeker user id")
	tagsArg := flag.String("tags", "", "comma-separated query tag ids (required)")
	k := flag.Int("k", 10, "number of results")
	mode := flag.String("mode", "auto", "execution mode: auto, exact, approx")
	algo := flag.String("algo", "", "force an algorithm in auto mode (SocialMerge, ContextMerge, SocialTA, GlobalTopK)")
	explain := flag.Bool("explain", false, "dump how the query was answered")
	alpha := flag.Float64("alpha", 1.0, "proximity hop damping in (0,1]")
	beta := flag.Float64("beta", 1.0, "social/global blend in [0,1]")
	theta := flag.Float64("theta", 0, "approximation: stop expanding below this proximity")
	maxUsers := flag.Int("max-users", 0, "approximation: expansion budget (0 = unlimited)")
	minScore := flag.Float64("min-score", 0, "drop results scoring below this")
	offset := flag.Int("offset", 0, "skip the first N results (paging)")
	flag.Parse()

	if *data == "" || *tagsArg == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, store, err := index.ReadFile(*data)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Proximity: proximity.Params{Alpha: *alpha, SelfWeight: 1},
		Beta:      *beta,
	}
	engine, err := core.NewEngine(g, store, cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine.AttachItemIndex(core.BuildItemIndex(store))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The σ-horizon / expansion-budget approximations predate the
	// request API and remain core-level knobs: run them directly. They
	// bypass the request surface, so the request-level flags must not be
	// silently dropped.
	if *theta > 0 || *maxUsers > 0 {
		if *mode != "auto" || *algo != "" || *explain || *minScore != 0 || *offset != 0 {
			log.Fatal("-theta/-max-users run the legacy core path and cannot be combined with -mode, -algo, -explain, -min-score or -offset")
		}
		runApproximate(ctx, engine, *seeker, *tagsArg, *k, *theta, *maxUsers)
		return
	}

	m, err := search.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	x, err := exec.New(engine, exec.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	req := search.Request{
		Seeker:   strconv.Itoa(*seeker),
		Tags:     []string{*tagsArg}, // Normalize splits the commas
		K:        *k,
		Mode:     m,
		AlgHint:  *algo,
		MinScore: *minScore,
		Offset:   *offset,
		Explain:  true, // always collected; printed on -explain
	}
	start := time.Now()
	resp, err := x.Do(ctx, req)
	elapsed := time.Since(start)
	if errors.Is(err, context.Canceled) {
		log.Fatal("query cancelled")
	}
	if err != nil {
		log.Fatal(err)
	}

	ex := resp.Explain
	fmt.Printf("mode=%s algorithm=%s seeker=%d tags=%s k=%d exact=%v\n",
		ex.Mode, ex.Algorithm, *seeker, *tagsArg, *k, ex.Exact)
	fmt.Printf("latency=%s settled=%d seq=%d rand=%d\n",
		elapsed, ex.UsersSettled, ex.SequentialAccesses, ex.RandomAccesses)
	if *explain {
		printExplain(ex)
	}
	printResults(resp.Results)
}

// runApproximate executes the legacy core-level approximate variants.
func runApproximate(ctx context.Context, engine *core.Engine, seeker int, tagsArg string, k int, theta float64, maxUsers int) {
	tags, err := cliutil.ParseTags(tagsArg)
	if err != nil {
		log.Fatal(err)
	}
	q := core.Query{Seeker: int32(seeker), Tags: tags, K: k}
	start := time.Now()
	ans, err := engine.SocialMerge(q, core.Options{Theta: theta, MaxUsers: maxUsers, Ctx: ctx})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode=approx algorithm=SocialMerge seeker=%d tags=%v k=%d exact=%v\n", seeker, tags, k, ans.Exact)
	fmt.Printf("latency=%s settled=%d seq=%d rand=%d\n",
		time.Since(start), ans.UsersSettled, ans.Access.Sequential, ans.Access.Random)
	results := make([]search.Result, len(ans.Results))
	for i, r := range ans.Results {
		results[i] = search.Result{Item: strconv.Itoa(int(r.Item)), Score: r.Score}
	}
	printResults(results)
}

func printExplain(ex *search.Explain) {
	fmt.Printf("planned=%v", ex.Planned)
	if len(ex.Estimates) > 0 {
		fmt.Print(" estimates={")
		first := true
		for _, alg := range search.AlgHints {
			if est, ok := ex.Estimates[alg]; ok {
				if !first {
					fmt.Print(" ")
				}
				fmt.Printf("%s:%.0f", alg, est)
				first = false
			}
		}
		fmt.Print("}")
	}
	fmt.Println()
	fmt.Printf("horizon=%d residual=%.4f cache_hit=%v generation=%d score_bound=%.4f beta=%.2f\n",
		ex.HorizonUsers, ex.HorizonResidual, ex.CacheHit, ex.CacheGeneration, ex.ScoreBound, ex.Beta)
}

func printResults(rs []search.Result) {
	if len(rs) == 0 {
		fmt.Println("(no matching items)")
		return
	}
	for i, r := range rs {
		fmt.Printf("%2d. item %-8s score %.4f\n", i+1, r.Item, r.Score)
	}
}
